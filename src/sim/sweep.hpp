#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/thread_pool.hpp"

namespace qmpi::sim {

/// Below this many loop iterations the pool dispatch overhead dominates;
/// run serial inline. Thresholds are in units of touched amplitudes.
inline constexpr std::size_t kMinParallel = 1ULL << 16;

/// Reduction chunk size. Lane-independent, so chunk partial sums combined
/// in chunk order give bit-identical results for any thread count.
inline constexpr std::size_t kReduceChunk = 1ULL << 14;

/// Runs `fn(begin, end)` over [0, count) on the shared persistent
/// ThreadPool when the problem is large enough; serial inline otherwise.
/// Every index is handled by exactly one lane, so elementwise loops are
/// bit-identical for any thread count. Shared by every Backend
/// implementation so serial and sharded sweeps obey the same thresholds.
template <typename Fn>
void parallel_sweep(unsigned num_threads, std::size_t count, Fn&& fn) {
  const unsigned lanes = count >= kMinParallel ? num_threads : 1;
  ThreadPool::instance().parallel_for(lanes, count, std::forward<Fn>(fn));
}

/// Adapter binding a lane count to parallel_sweep, in the shape the
/// kernels' `pfor` parameter expects — shared by every backend so the
/// threshold logic lives in exactly one place.
inline auto lanes_pfor(unsigned num_threads) {
  return [num_threads](std::size_t count, auto&& fn) {
    parallel_sweep(num_threads, count, std::forward<decltype(fn)>(fn));
  };
}

/// Serial-inline `pfor` for sweeps that are already running on a worker
/// lane (e.g. one shard per lane) and must not re-enter the pool.
inline constexpr auto serial_pfor = [](std::size_t count, auto&& fn) {
  if (count > 0) fn(std::size_t{0}, count);
};

/// Order-fixed parallel reduction: partitions [0, count) into chunks of a
/// lane-independent size, reduces each chunk with `chunk_fn(begin, end)`,
/// and combines partials in chunk order — so the sum is bit-identical for
/// any thread count, including the serial path. Both backends reduce with
/// the same chunking, which is what makes sharded scalars exactly equal to
/// serial ones.
template <typename T, typename ChunkFn>
T chunked_reduce(unsigned num_threads, std::size_t count, ChunkFn&& chunk_fn) {
  const std::size_t nchunks = (count + kReduceChunk - 1) / kReduceChunk;
  if (nchunks <= 1) {
    return count == 0 ? T{} : chunk_fn(std::size_t{0}, count);
  }
  std::vector<T> partials(nchunks);
  const unsigned lanes = count >= kMinParallel ? num_threads : 1;
  ThreadPool::instance().parallel_for(
      lanes, nchunks, [&](std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          const std::size_t lo = c * kReduceChunk;
          const std::size_t hi = std::min(count, lo + kReduceChunk);
          partials[c] = chunk_fn(lo, hi);
        }
      });
  T total{};
  for (const T& p : partials) total += p;
  return total;
}

}  // namespace qmpi::sim
