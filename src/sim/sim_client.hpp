#pragma once

/// \file sim_client.hpp
/// The typed quantum-operation surface of a rank, abstract over where
/// the state vector lives. See docs/ARCHITECTURE.md §4.


#include <span>
#include <utility>
#include <vector>

#include "sim/gates.hpp"
#include "sim/server.hpp"

namespace qmpi::sim {

/// The quantum operations a QMPI rank may perform, as an abstract typed
/// surface instead of raw closures over the Backend.
///
/// Two implementations exist:
///   - LocalSimClient (below): submits to the in-process SimServer — the
///     path every threads-as-ranks job takes.
///   - RemoteSimClient (core/sim_wire.hpp): serializes each call onto the
///     rank process's hub connection, where the launcher-hosted backend
///     executes it — the paper's "forward quantum operations to rank 0"
///     made literal across OS processes.
///
/// Context is written entirely against this interface, so protocols,
/// collectives, and tests cannot tell (and must not care) where the state
/// vector actually lives. Anything added here needs a wire encoding in
/// core/sim_wire.hpp; keep the surface small and typed.
///
/// Pipelining contract: reply-free operations (gates, classical
/// deallocation) MAY be buffered by an implementation and shipped to the
/// backend later in issue order. Every operation that returns a value
/// (allocate, measure*, probability/expectation queries, num_qubits) is a
/// synchronization point: it observes all previously issued operations.
/// flush() forces buffered operations onto their way to the backend;
/// fence() additionally waits until they have executed, surfacing any
/// deferred error. For the in-process client both are free no-ops — every
/// call executes synchronously.
///
/// Error contract: misuse (bad handle, deallocating an entangled qubit)
/// throws SimulatorError from every implementation — remote failures are
/// marshalled back and rethrown as SimulatorError with the original text.
/// A buffered operation's error may surface at a later synchronization
/// point (the next reply op, flush(), or fence()) instead of at the call
/// that issued it; the message always identifies the failing operation.
class SimClient {
 public:
  virtual ~SimClient() = default;

  /// Allocates `count` fresh qubits in |0>; returns their global ids.
  virtual std::vector<QubitId> allocate(std::size_t count) = 0;
  /// Deallocates qubits that are in a classical basis state.
  virtual void deallocate_classical(std::span<const QubitId> ids) = 0;

  /// Applies a single-qubit gate.
  virtual void apply(const Gate1Q& gate, QubitId qubit) = 0;
  virtual void cnot(QubitId control, QubitId target) = 0;
  virtual void cz(QubitId control, QubitId target) = 0;
  virtual void toffoli(QubitId c0, QubitId c1, QubitId target) = 0;

  /// Projective Z measurement with collapse.
  virtual bool measure(QubitId qubit) = 0;
  /// X-basis measurement with collapse.
  virtual bool measure_x(QubitId qubit) = 0;
  /// Joint parity measurement (collapses only the parity observable).
  virtual bool measure_parity(std::span<const QubitId> qubits) = 0;

  /// Probability of measuring 1 (no collapse).
  virtual double probability_one(QubitId qubit) = 0;
  /// Expectation value of a Pauli string, e.g. {{q0,'Z'},{q1,'X'}}.
  virtual double expectation(
      std::span<const std::pair<QubitId, char>> paulis) = 0;
  /// Number of currently allocated qubits in the global state.
  virtual std::size_t num_qubits() = 0;

  /// Forces any locally buffered reply-free operations onto their way to
  /// the backend (asynchronously; see the pipelining contract above).
  /// No-op when nothing is buffered or nothing ever buffers.
  virtual void flush() {}

  /// flush(), then wait until every operation issued through this client
  /// has executed, rethrowing any deferred backend error as
  /// SimulatorError. The job harness fences at run end so a program that
  /// finishes with buffered gates still executes (and error-checks) them.
  virtual void fence() { flush(); }
};

/// Default number of reply-free ops RemoteSimClient coalesces into one
/// batch frame before flushing on its own (QMPI_SIM_BATCH=on), and the
/// hard ceiling an explicit QMPI_SIM_BATCH=<n> may request.
inline constexpr std::size_t kDefaultSimBatchOps = 1024;
inline constexpr std::size_t kMaxSimBatchOps = 1u << 20;

/// SimClient over the in-process SimServer: each call is one serialized
/// command on the server's worker thread, preserving the strict arrival
/// order the shared-state simulation depends on.
class LocalSimClient final : public SimClient {
 public:
  explicit LocalSimClient(SimServer& server) : server_(&server) {}

  std::vector<QubitId> allocate(std::size_t count) override {
    return server_->call(
        [count](Backend& sv) { return sv.allocate(count); });
  }

  void deallocate_classical(std::span<const QubitId> ids) override {
    std::vector<QubitId> copy(ids.begin(), ids.end());
    server_->call([copy = std::move(copy)](Backend& sv) {
      for (const auto id : copy) sv.deallocate_classical(id);
      return 0;
    });
  }

  void apply(const Gate1Q& gate, QubitId qubit) override {
    server_->call([&gate, qubit](Backend& sv) {
      sv.apply(gate, qubit);
      return 0;
    });
  }

  void cnot(QubitId control, QubitId target) override {
    server_->call([control, target](Backend& sv) {
      sv.cnot(control, target);
      return 0;
    });
  }

  void cz(QubitId control, QubitId target) override {
    server_->call([control, target](Backend& sv) {
      sv.cz(control, target);
      return 0;
    });
  }

  void toffoli(QubitId c0, QubitId c1, QubitId target) override {
    server_->call([c0, c1, target](Backend& sv) {
      sv.toffoli(c0, c1, target);
      return 0;
    });
  }

  bool measure(QubitId qubit) override {
    return server_->call([qubit](Backend& sv) { return sv.measure(qubit); });
  }

  bool measure_x(QubitId qubit) override {
    return server_->call(
        [qubit](Backend& sv) { return sv.measure_x(qubit); });
  }

  bool measure_parity(std::span<const QubitId> qubits) override {
    std::vector<QubitId> copy(qubits.begin(), qubits.end());
    return server_->call([copy = std::move(copy)](Backend& sv) {
      return sv.measure_parity(copy);
    });
  }

  double probability_one(QubitId qubit) override {
    return server_->call(
        [qubit](Backend& sv) { return sv.probability_one(qubit); });
  }

  double expectation(
      std::span<const std::pair<QubitId, char>> paulis) override {
    std::vector<std::pair<QubitId, char>> copy(paulis.begin(), paulis.end());
    return server_->call([copy = std::move(copy)](Backend& sv) {
      return sv.expectation(copy);
    });
  }

  std::size_t num_qubits() override {
    return server_->call([](Backend& sv) { return sv.num_qubits(); });
  }

 private:
  SimServer* server_;
};

}  // namespace qmpi::sim
