#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/fusion.hpp"
#include "sim/gates.hpp"

namespace qmpi::sim {

/// Stable handle for a simulated qubit. Handles survive allocation and
/// deallocation of other qubits (the underlying state-vector position is an
/// implementation detail that shifts as qubits come and go).
using QubitId = std::uint64_t;

/// Error raised on misuse of the simulator (bad handle, dealloc of an
/// entangled qubit, etc.).
class SimulatorError : public std::runtime_error {
 public:
  explicit SimulatorError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Full state-vector quantum simulator with dynamic qubit management.
///
/// This is the substrate behind the QMPI prototype (paper §6): a single
/// global state vector that faithfully represents the quantum state of the
/// whole distributed machine. Qubits are addressed by stable QubitIds;
/// allocation appends a |0> tensor factor, deallocation removes a factor
/// (requiring it to be disentangled and in |0>, as in ProjectQ-style
/// simulators).
///
/// Not thread-safe by itself; the SimServer serializes access, mirroring the
/// paper's design where all ranks forward operations to rank 0.
class StateVector {
 public:
  /// Creates an empty register. `seed` fixes the measurement RNG so tests
  /// and experiments are reproducible.
  explicit StateVector(std::uint64_t seed = 0x5EED5EED5EEDULL);

  // ------------------------------------------------------------ qubits ---

  /// Allocates `count` fresh qubits in |0>; returns their ids (contiguous).
  std::vector<QubitId> allocate(std::size_t count);

  /// Deallocates a qubit that must be disentangled and in state |0>.
  /// Throws SimulatorError otherwise (catching uncomputation bugs early —
  /// the same discipline the paper's reversible primitives rely on).
  void deallocate(QubitId qubit);

  /// Measures then deallocates, returning the outcome. Safe on any state.
  bool release(QubitId qubit);

  /// Deallocates a qubit that is in a classical basis state (|0> or |1>,
  /// possibly after a measurement). Throws SimulatorError if the qubit is
  /// still in superposition or entangled. This is the semantics of
  /// QMPI_Free_qmem in the paper's prototype, whose examples free qubits
  /// immediately after measuring them.
  void deallocate_classical(QubitId qubit);

  std::size_t num_qubits() const { return positions_.size(); }
  bool is_valid(QubitId qubit) const { return index_.contains(qubit); }

  // ------------------------------------------------------------- gates ---

  /// Applies a single-qubit gate. With fusion enabled (the default) the
  /// gate is queued and composed with later gates on the same qubit; the
  /// O(2^n) sweep happens at the next flush boundary (entangling gate,
  /// measurement, amplitude inspection, deallocation).
  void apply(const Gate1Q& gate, QubitId target);

  /// Applies `gate` on `target` controlled on all `controls` being |1>.
  void apply_controlled(const Gate1Q& gate, std::span<const QubitId> controls,
                        QubitId target);

  void x(QubitId q) { apply(gate_x(), q); }
  void y(QubitId q) { apply(gate_y(), q); }
  void z(QubitId q) { apply(gate_z(), q); }
  void h(QubitId q) { apply(gate_h(), q); }
  void s(QubitId q) { apply(gate_s(), q); }
  void sdg(QubitId q) { apply(gate_sdg(), q); }
  void t(QubitId q) { apply(gate_t(), q); }
  void tdg(QubitId q) { apply(gate_tdg(), q); }
  void rx(QubitId q, double theta) { apply(gate_rx(theta), q); }
  void ry(QubitId q, double theta) { apply(gate_ry(theta), q); }
  void rz(QubitId q, double theta) { apply(gate_rz(theta), q); }

  void cnot(QubitId control, QubitId target) {
    const QubitId c[] = {control};
    apply_controlled(gate_x(), c, target);
  }
  void cz(QubitId control, QubitId target) {
    const QubitId c[] = {control};
    apply_controlled(gate_z(), c, target);
  }
  void toffoli(QubitId c0, QubitId c1, QubitId target) {
    const QubitId c[] = {c0, c1};
    apply_controlled(gate_x(), c, target);
  }
  void swap(QubitId a, QubitId b) {
    cnot(a, b);
    cnot(b, a);
    cnot(a, b);
  }

  // ------------------------------------------------------ measurements ---

  /// Projective Z-basis measurement with collapse.
  bool measure(QubitId qubit);

  /// X-basis measurement (H, then Z measurement) with collapse. This is the
  /// "measure after Hadamard" step of the paper's unfanout (Fig. 1b / 3b).
  bool measure_x(QubitId qubit);

  /// Joint parity measurement: projects onto the +1/-1 eigenspace of
  /// Z x Z x ... x Z over `qubits` and returns the parity bit (1 = odd).
  /// Unlike per-qubit measurement this does NOT collapse superpositions
  /// within an eigenspace — the primitive behind cat-state assembly (Fig. 4).
  bool measure_parity(std::span<const QubitId> qubits);

  // ------------------------------------------------------- inspection ---

  /// Probability that measuring `qubit` yields 1 (no collapse).
  double probability_one(QubitId qubit) const;

  /// Amplitude of the classical basis state given by `bits` (one bool per
  /// currently allocated qubit, ordered by the ids in `order`).
  Complex amplitude(std::span<const QubitId> order,
                    std::span<const bool> bits) const;

  /// <psi| P |psi> for a Pauli string P given as (qubit, 'X'/'Y'/'Z') pairs.
  double expectation(
      std::span<const std::pair<QubitId, char>> pauli) const;

  /// Applies exp(-i t P) for a Pauli string P directly (reference
  /// implementation for validating distributed Trotter circuits).
  void apply_pauli_rotation(std::span<const std::pair<QubitId, char>> pauli,
                            double t);

  /// Raw amplitudes, indexed by position bits (position of qubit id q is
  /// position_of(q)). Exposed for white-box tests and benchmarks. Flushes
  /// pending fused gates so the returned vector is the true current state.
  const std::vector<Complex>& amplitudes() const {
    flush_gates();
    return amplitudes_;
  }
  std::size_t position_of(QubitId qubit) const { return position_checked(qubit); }

  /// Global L2 norm (should always be 1 within rounding).
  double norm() const;

  /// Reseeds the measurement RNG.
  void seed(std::uint64_t s) { rng_.seed(s); }

  /// Enables multi-threaded gate application with `n` worker threads
  /// (the paper's prototype "uses MPI and multi-threading"). Threads kick
  /// in only for registers large enough to amortize the fork/join cost;
  /// results are bit-identical to the serial path. Default: 1 (serial).
  void set_num_threads(unsigned n) { num_threads_ = n == 0 ? 1 : n; }
  unsigned num_threads() const { return num_threads_; }

  /// Enables/disables lazy single-qubit gate fusion (default: enabled).
  /// Disabling flushes anything still pending.
  void set_fusion_enabled(bool on);
  bool fusion_enabled() const { return fusion_enabled_; }

  /// Applies all pending fused gates to the state vector. Called
  /// automatically at every boundary that observes or couples qubits;
  /// public so benchmarks can time gate application itself.
  void flush_gates() const;

  /// Number of 1Q gates currently queued (white-box for fusion tests).
  std::size_t pending_gates() const { return fusion_.size(); }

 private:
  /// P's per-basis-state action, shared by expectation() and
  /// apply_pauli_rotation(): X-type ops flip bits in `flip`, Z-type ops
  /// contribute signs via `z`, each Y adds a global factor i.
  struct PauliMasks {
    std::uint64_t flip = 0;
    std::uint64_t z = 0;
    int y_count = 0;
  };
  PauliMasks parse_pauli(
      std::span<const std::pair<QubitId, char>> pauli) const;

  std::size_t position_checked(QubitId qubit) const;
  void apply_at(const Gate1Q& gate, std::size_t pos,
                std::uint64_t ctrl_mask) const;
  /// Collapses `pos` to `bit` with renormalization; returns nothing.
  void collapse(std::size_t pos, bool bit, double prob_bit);
  /// Removes the (classical, = `bit`) qubit at `pos` from the register.
  void remove_position(std::size_t pos, bool bit);
  double probability_one_at(std::size_t pos) const;

  /// Runs `fn(begin, end)` over [0, count) on the shared persistent
  /// ThreadPool when the problem is large enough; serial inline otherwise.
  /// Every index is handled by exactly one lane, so results are
  /// bit-identical for any thread count.
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn) const;

  /// Order-fixed parallel reduction: partitions [0, count) into chunks of a
  /// lane-independent size, reduces each chunk with `chunk_fn(begin, end)`,
  /// and combines partials in chunk order — so the sum is bit-identical for
  /// any thread count, including the serial path.
  template <typename T, typename ChunkFn>
  T chunked_reduce(std::size_t count, ChunkFn&& chunk_fn) const;

  /// amplitudes_ and fusion_ are mutable: fusion makes gate application
  /// lazy, so logically-const observers (probability_one, expectation,
  /// amplitudes) may have to materialize pending gates first. The class was
  /// never thread-safe for concurrent use (see class comment).
  mutable std::vector<Complex> amplitudes_;
  mutable FusionQueue fusion_;
  std::vector<QubitId> positions_;                    ///< pos -> id
  std::unordered_map<QubitId, std::size_t> index_;    ///< id -> pos
  QubitId next_id_ = 1;
  std::mt19937_64 rng_;
  unsigned num_threads_ = 1;
  bool fusion_enabled_ = true;
};

}  // namespace qmpi::sim
