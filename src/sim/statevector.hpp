#pragma once

#include <cstdint>
#include <vector>

#include "sim/backend.hpp"

namespace qmpi::sim {

/// Full state-vector quantum simulator over one flat amplitude array.
///
/// This is the substrate behind the QMPI prototype (paper §6): a single
/// global state vector that faithfully represents the quantum state of the
/// whole distributed machine. All register/protocol behavior (qubit ids,
/// fusion, measurement flow) lives in Backend; this class implements only
/// the flat-array representation hooks. Qubit allocation appends a |0>
/// tensor factor, deallocation removes a factor (requiring it to be
/// disentangled and in |0>, as in ProjectQ-style simulators).
class StateVector : public Backend {
 public:
  /// Creates an empty register. `seed` fixes the measurement RNG so tests
  /// and experiments are reproducible.
  explicit StateVector(std::uint64_t seed = kDefaultSeed);

  /// Raw amplitudes, indexed by position bits (position of qubit id q is
  /// position_of(q)). Exposed for white-box tests and benchmarks. Flushes
  /// pending fused gates so the returned vector is the true current state.
  const std::vector<Complex>& amplitudes() const {
    flush_gates();
    return amplitudes_;
  }

  const char* name() const override { return "serial"; }

 private:
  void grow_state() override;
  void remove_position_state(std::size_t pos, bool bit) override;
  void apply_at(const Gate1Q& gate, std::size_t pos,
                std::uint64_t ctrl_mask) const override;
  void apply_cluster_at(std::span<const std::size_t> pos,
                        std::span<const kernels::BlockOp> ops) const override;
  void apply_matrix_at(std::span<const Complex> matrix,
                       std::span<const std::size_t> pos,
                       std::uint64_t ctrl_mask) const override;
  double probability_one_at(std::size_t pos) const override;
  void collapse_at(std::size_t pos, bool bit, double prob_bit) override;
  double parity_odd_probability(std::uint64_t mask) const override;
  void parity_collapse(std::uint64_t mask, bool outcome,
                       double prob) override;
  Complex amplitude_at(std::uint64_t index) const override;
  double expectation_masks(const PauliMasks& masks) const override;
  void pauli_rotation_masks(const PauliMasks& masks, double t) override;
  double norm_state() const override;
  std::vector<Complex> snapshot_state() const override;

  /// amplitudes_ is mutable: fusion makes gate application lazy, so
  /// logically-const observers may have to materialize pending gates first.
  /// The class was never thread-safe for concurrent use (see Backend).
  mutable std::vector<Complex> amplitudes_;
};

}  // namespace qmpi::sim
