#pragma once

/// \file simd.hpp
/// Runtime-dispatched SIMD primitives for the O(2^n) amplitude sweeps.
///
/// The sweep kernels in kernels.hpp decompose every gate application into
/// contiguous runs of interleaved complex doubles (re, im, re, im, ...) and
/// hand each run to one of the primitives below. The primitives come in
/// three implementations — scalar, AVX2, AVX-512 — selected once per
/// process by runtime CPU detection (overridable via QMPI_SIMD), so one
/// binary serves any x86-64 host.
///
/// Numerical contract: every implementation performs the exact textbook
/// complex arithmetic of the scalar reference — (a*b).re = a.re*b.re -
/// a.im*b.im computed as two multiplies and one subtract, never a fused
/// multiply-add — and simd.cpp is compiled with -ffp-contract=off so the
/// compiler cannot re-fuse it. On default builds (no -march flags) the
/// scalar kernels cannot be contracted either, so vector and scalar paths
/// produce bit-identical amplitudes; with exotic flags the guaranteed
/// bound is <= 1e-12 (see docs/ARCHITECTURE.md, "Kernel dispatch & SIMD").
///
/// Layout contract: amplitudes are std::complex<double> arrays — two
/// interleaved doubles per amplitude, 16-byte aligned by the allocator.
/// The primitives use unaligned loads/stores, so callers may pass runs
/// starting at any amplitude offset (runs split on compressed-index
/// boundaries, which land on arbitrary addresses).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/gates.hpp"

namespace qmpi::sim::simd {

/// Instruction-set tier of a kernel implementation, ordered by preference.
enum class Isa : std::uint8_t {
  kScalar = 0,  ///< portable reference; the bit-identity baseline
  kAvx2 = 1,    ///< 256-bit: 2 complex doubles per op
  kAvx512 = 2,  ///< 512-bit: 4 complex doubles per op (needs F+DQ+VL)
};

/// What the user asked for via QMPI_SIMD (kAuto = best available).
enum class Request : std::uint8_t { kAuto, kScalar, kAvx2, kAvx512 };

const char* to_string(Isa isa);

/// True when this CPU can execute the given tier (cpuid-style detection;
/// kScalar is always available, and on non-x86 builds nothing else is).
bool available(Isa isa);

/// The highest available tier on this CPU.
Isa best_available();

/// Strict parse of a QMPI_SIMD value ("auto", "scalar", "avx2", "avx512").
/// Returns false on anything else so the caller can fail loud — garbage
/// must never silently change what a benchmark measures.
bool parse_request(std::string_view text, Request& out);

/// Outcome of resolving a request against this CPU: the tier that will
/// actually run, plus a human-readable notice when the request named an
/// unavailable ISA and execution fell back (empty otherwise). Requesting
/// unavailable hardware is not an error — the same QMPI_SIMD=avx512 job
/// script must run on an AVX2-only node — but it is recorded, so a perf
/// record can never silently claim an ISA that never executed.
struct Selection {
  Isa isa = Isa::kScalar;
  std::string notice;
};
Selection resolve(Request request);

/// Forces the active tier for this process. Throws SimulatorError when the
/// tier is not available on this CPU (tests and the paritycheck use this
/// to force a specific variant; use resolve() for fallback semantics).
void set_active(Isa isa);

/// The active tier. Initialized lazily on first use from QMPI_SIMD (with
/// resolve() fallback semantics; a malformed value throws SimulatorError),
/// so standalone Backend users — benchmarks, tests — honor the override
/// without going through JobOptions. take_env_notice() returns the
/// fallback notice from that lazy initialization, if any, exactly once.
Isa active();
std::string take_env_notice();

/// Function-pointer table of the vector primitives for one tier. All
/// pointers operate on `n` complex amplitudes and tolerate n == 0; `dst`
/// and `src` ranges must not overlap (pair primitives take two disjoint
/// runs of the same length, typically `stride` amplitudes apart).
struct Ops {
  Isa isa = Isa::kScalar;
  /// p[i] *= f
  void (*scale)(Complex* p, std::size_t n, Complex f);
  /// dst[i] = f * src[i]
  void (*scale_copy)(Complex* dst, const Complex* src, std::size_t n,
                     Complex f);
  /// acc[i] += f * x[i]
  void (*axpy)(Complex* acc, const Complex* x, std::size_t n, Complex f);
  /// dst[i] = f_dst * dst[i] + f_src * src[i] (shard-exchange combine)
  void (*combine)(Complex* dst, const Complex* src, std::size_t n,
                  Complex f_dst, Complex f_src);
  /// {a[i], b[i]} = {m00*a[i] + m01*b[i], m10*a[i] + m11*b[i]}
  void (*pair_dense)(Complex* a, Complex* b, std::size_t n, Complex m00,
                     Complex m01, Complex m10, Complex m11);
  /// {a[i], b[i]} = {m01*b[i], m10*a[i]}
  void (*pair_antidiag)(Complex* a, Complex* b, std::size_t n, Complex m01,
                        Complex m10);
  /// swap(a[i], b[i]) — X/CNOT permutation runs
  void (*swap_halves)(Complex* a, Complex* b, std::size_t n);
};

/// Primitive table for an explicit tier (identity tests sweep these).
const Ops& ops_for(Isa isa);

/// Primitive table for the active tier.
inline const Ops& ops() { return ops_for(active()); }

/// Below this run length (in amplitudes) the sweeps keep their scalar
/// inner loops: a function-pointer call per 1-2 amplitudes costs more
/// than the vector lanes recover, and the AVX-512 path wants at least one
/// full 4-amplitude vector. Gates on qubit positions >= 2 clear it.
inline constexpr std::size_t kMinRun = 4;

}  // namespace qmpi::sim::simd
