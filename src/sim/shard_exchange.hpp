#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/gates.hpp"

namespace qmpi::sim {

/// One amplitude-slab message between shard workers. `tag` is the global
/// operation tick it belongs to, so a late worker can never consume a slab
/// from the wrong sweep.
struct ShardMessage {
  unsigned source = 0;
  std::uint64_t tag = 0;
  std::vector<Complex> amplitudes;
};

/// In-process message fabric between shard workers, modeled on the rank
/// mailboxes in classical/mailbox.hpp: one inbox per shard, FIFO per
/// (source, tag), blocking matched receive. This is the stand-in for the
/// MPI exchange a multi-rank sharded simulator performs when a gate acts on
/// a global qubit — each shard posts the slab its partner needs, then takes
/// the partner's slab and combines locally.
///
/// post() never blocks (eager, buffered, like classical::Comm::send_bytes);
/// take() blocks until a matching message arrives. The sharded sweeps run
/// post-everything then take-everything phases, so takes cannot deadlock
/// regardless of how the ThreadPool schedules shard work onto lanes.
class ShardMesh {
 public:
  explicit ShardMesh(unsigned shards);

  unsigned shards() const { return shards_; }

  /// Deposits `msg` in `dest`'s inbox and wakes any waiter.
  void post(unsigned dest, ShardMessage msg);

  /// Blocks until a message from `source` with `tag` is in `dest`'s inbox
  /// and removes it.
  ShardMessage take(unsigned dest, unsigned source, std::uint64_t tag);

 private:
  /// Per-shard inbox. Kept behind unique_ptr so the mesh stays movable
  /// (mutexes are not).
  struct Inbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<ShardMessage> queue;
  };

  Inbox& inbox(unsigned shard);

  unsigned shards_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
};

}  // namespace qmpi::sim
