#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.hpp"
#include "sim/gates.hpp"

namespace qmpi::sim {

/// One amplitude-slab message between shard workers. `tag` is the global
/// operation tick it belongs to, so a late worker can never consume a slab
/// from the wrong sweep.
struct ShardMessage {
  unsigned source = 0;
  std::uint64_t tag = 0;
  std::vector<Complex> amplitudes;
};

/// Contiguous block of slices a rank owns when `active` slices are split
/// across `world` ranks: blocks differ by at most one, earlier ranks take
/// the remainder (same shape as classical::rank_block, duplicated here so
/// the sim layer stays free of transport headers). With `active < world`
/// the trailing ranks own an empty range — they still replay the op stream
/// (ticks, RNG) but move no amplitudes.
inline std::pair<unsigned, unsigned> slice_block(unsigned world,
                                                 unsigned rank,
                                                 unsigned active) {
  const unsigned base = active / world;
  const unsigned rem = active % world;
  const unsigned begin = rank * base + std::min(rank, rem);
  return {begin, begin + base + (rank < rem ? 1U : 0U)};
}

/// Inverse of slice_block: the rank that owns `slice` out of `active`.
inline unsigned slice_owner(unsigned world, unsigned active, unsigned slice) {
  const unsigned base = active / world;
  const unsigned rem = active % world;
  const unsigned fat = rem * (base + 1);  // slices held by the wider ranks
  if (slice < fat) return slice / (base + 1);
  return rem + (slice - fat) / base;
}

/// Exchange seam between the sharded state vector and whatever fabric moves
/// amplitude slabs — the scaleout-provider shape: one interface, an in-box
/// (in-process ShardMesh) implementation and an out-of-box (cross-rank peer
/// channel) implementation.
///
/// The pairwise surface (post/take) carries the slab exchange of global
/// gates and relabel swaps: post is eager and addressed to a *slice* (the
/// provider routes it to that slice's owning rank for the given active
/// count); take blocks until the matching (dest, source, tag) slab arrives.
///
/// The collective surface exists for world > 1: publish() hands a resident
/// slice to every other rank and take_published() collects one, which is
/// how reduction-style operations (probabilities, norms, snapshots, state
/// reshapes) materialize a full replica before running the exact serial
/// enumeration — the bit-identity contract does not allow re-associating
/// partial sums across ranks. scalar_consensus() lets the root rank's
/// reduction result become authoritative for everyone (measurement
/// consensus); at world 1 it returns `value` unchanged.
///
/// fail() wakes every blocked take with a SimulatorError so a dead peer
/// surfaces as a typed error instead of a hang.
class ExchangeProvider {
 public:
  virtual ~ExchangeProvider() = default;

  /// Number of ranks slices are partitioned across (1 = in-process).
  virtual unsigned world() const = 0;
  /// This rank's index in [0, world()).
  virtual unsigned rank() const = 0;

  /// Deposits `msg` for slice `dest` (owned by slice_owner(world, active,
  /// dest)) and returns without blocking.
  virtual void post(unsigned dest, unsigned active, ShardMessage msg) = 0;

  /// Blocks until a message for slice `dest` from slice `source` with `tag`
  /// is available and removes it. `dest` must be resident on this rank.
  virtual ShardMessage take(unsigned dest, unsigned source,
                            std::uint64_t tag) = 0;

  /// Sends resident slice `slice`'s amplitudes to every other rank.
  virtual void publish(unsigned slice, std::uint64_t tag,
                       std::span<const Complex> amps) = 0;

  /// Blocks until the owner's publish() of `slice` under `tag` arrives.
  virtual std::vector<Complex> take_published(unsigned slice,
                                              std::uint64_t tag) = 0;

  /// Root (rank 0) broadcasts `value`; everyone returns the root's value.
  virtual double scalar_consensus(std::uint64_t tag, double value) = 0;

  /// Wakes all blocked take()/take_published()/scalar waiters with a
  /// SimulatorError carrying `reason`.
  virtual void fail(const std::string& reason) = 0;
};

/// In-process message fabric between shard workers, modeled on the rank
/// mailboxes in classical/mailbox.hpp: one inbox per shard, FIFO per
/// (source, tag), blocking matched receive. This is the in-box stand-in for
/// the cross-rank exchange a multi-rank sharded simulator performs when a
/// gate acts on a global qubit — each shard posts the slab its partner
/// needs, then takes the partner's slab and combines locally.
///
/// post() never blocks (eager, buffered, like classical::Comm::send_bytes);
/// take() blocks until a matching message arrives. The sharded sweeps run
/// post-everything then take-everything phases, so takes cannot deadlock
/// regardless of how the ThreadPool schedules shard work onto lanes.
class ShardMesh final : public ExchangeProvider {
 public:
  explicit ShardMesh(unsigned shards);

  unsigned shards() const { return shards_; }

  unsigned world() const override { return 1; }
  unsigned rank() const override { return 0; }

  void post(unsigned dest, unsigned active, ShardMessage msg) override;
  ShardMessage take(unsigned dest, unsigned source,
                    std::uint64_t tag) override;

  /// At world 1 every slice is already resident: the collective surface
  /// degenerates to no-ops (publish) and programming errors (take).
  void publish(unsigned slice, std::uint64_t tag,
               std::span<const Complex> amps) override;
  std::vector<Complex> take_published(unsigned slice,
                                      std::uint64_t tag) override;
  double scalar_consensus(std::uint64_t tag, double value) override;

  void fail(const std::string& reason) override;

 private:
  /// Per-shard inbox. Kept behind unique_ptr so the mesh stays movable
  /// (mutexes are not).
  struct Inbox {
    qmpi::Mutex mutex{"ShardMesh::Inbox::mutex"};
    qmpi::CondVar cv;
    std::deque<ShardMessage> queue QMPI_GUARDED_BY(mutex);
  };

  Inbox& inbox(unsigned shard);

  unsigned shards_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  /// Checked by a taker while its inbox mutex is held (Inbox::mutex is
  /// QMPI_ACQUIRED_BEFORE fail_mu_); fail() itself takes the two in
  /// separate scopes.
  qmpi::Mutex fail_mu_{"ShardMesh::fail_mu"};
  std::string fail_reason_ QMPI_GUARDED_BY(fail_mu_);  ///< set once by fail()
};

}  // namespace qmpi::sim
