#pragma once

/// \file circuit_cache.hpp
/// Compiled-cluster cache: cluster fusion's per-block instruction streams
/// keyed by the exact circuit content of the cluster, so repeated Trotter
/// steps (and repeated user jobs on a multi-tenant service) replay a
/// previously compiled program instead of re-running compile_block_op.
/// See docs/ARCHITECTURE.md §9.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "sim/fusion.hpp"
#include "sim/kernels.hpp"

namespace qmpi::sim {

/// Default entry cap when the cache is enabled without an explicit size
/// (QMPI_CIRCUIT_CACHE=on). One entry is at most kMaxFusedOps * 2 BlockOps
/// (~2 KiB), so the default caps the cache near half a megabyte.
inline constexpr std::size_t kDefaultCircuitCacheEntries = 256;

/// Content key of one fused cluster: the byte image of everything
/// compile_block_op's output depends on — qubit count (which fixes the
/// block size) and, per op, the block-local target, the block-local
/// control mask, and the bit patterns of the four matrix entries. The gate
/// *name* is deliberately excluded: two differently named gates with the
/// same matrix compile identically, so keying on content raises the hit
/// rate without risking a wrong replay. Bit patterns (not ==) keep the key
/// exact: -0.0 and 0.0 hash differently, which can only split entries,
/// never alias two clusters that compile differently.
struct ClusterKey {
  std::vector<std::uint64_t> words;
  std::uint64_t hash = 0;
  bool operator==(const ClusterKey& other) const {
    return hash == other.hash && words == other.words;
  }
};

/// Builds the content key for `cluster` (see ClusterKey).
ClusterKey make_cluster_key(const GateCluster& cluster);

/// Thread-safe LRU cache of compiled cluster programs, shared by any
/// number of backends (the job service hands one instance to every
/// session's backend — compilation is a pure function of the key, so
/// cross-session sharing can leak timing at most, never amplitudes).
/// Values are shared_ptr so an entry evicted mid-replay stays alive until
/// the sweep that borrowed it finishes.
class ClusterCache {
 public:
  /// `capacity` is the entry cap (>= 1); least-recently-used entries are
  /// evicted beyond it.
  explicit ClusterCache(std::size_t capacity);

  ClusterCache(const ClusterCache&) = delete;
  ClusterCache& operator=(const ClusterCache&) = delete;

  using Program = std::shared_ptr<const std::vector<kernels::BlockOp>>;

  /// Returns the cached program for `key` (bumping its recency), or null.
  Program lookup(const ClusterKey& key);

  /// Inserts `program` under `key`, evicting the LRU entry when full.
  /// A concurrent insert of the same key keeps the existing entry (both
  /// compiles produced identical programs, so either is correct).
  void insert(const ClusterKey& key, Program program);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Counters for tests, the service stats surface, and the bench record.
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    ClusterKey key;
    Program program;
  };
  struct KeyHash {
    std::size_t operator()(const ClusterKey& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };

  std::size_t capacity_;
  /// Leaf lock of the service hierarchy (JobService::mu_ -> mu_ via the
  /// stats surface); nothing is acquired while it is held.
  mutable qmpi::Mutex mu_{"ClusterCache::mu"};
  std::list<Entry> lru_ QMPI_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<ClusterKey, std::list<Entry>::iterator, KeyHash> index_
      QMPI_GUARDED_BY(mu_);
  std::uint64_t hits_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ QMPI_GUARDED_BY(mu_) = 0;
};

}  // namespace qmpi::sim
