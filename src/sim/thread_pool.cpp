#include "sim/thread_pool.hpp"

#include <algorithm>

namespace qmpi::sim {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    const qmpi::LockGuard lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::worker_count() const {
  const qmpi::LockGuard lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers(unsigned needed) {
  // Only called with job_mutex_ held, so workers_ cannot be resized
  // concurrently; workers themselves never touch the vector.
  if (workers_.size() >= needed) return;
  const qmpi::LockGuard lock(mutex_);
  while (workers_.size() < needed) {
    const unsigned index = static_cast<unsigned>(workers_.size());
    workers_.emplace_back([this, index] { worker_main(index); });
  }
}

void ThreadPool::run(unsigned lanes, std::size_t count, RangeFn fn,
                     void* ctx) {
  lanes = std::min(lanes, kMaxLanes);

  // Slice size: even split, rounded up to 8 complex doubles so adjacent
  // lanes do not share a cache line — but only when the range is fine-
  // grained enough that alignment doesn't eat lanes. Coarse jobs (one item
  // per shard, one item per reduction chunk) must keep granularity 1 or a
  // handful of items would all collapse onto the submitting thread.
  std::size_t slice = (count + lanes - 1) / lanes;
  if (count >= static_cast<std::size_t>(lanes) * 8) {
    slice = (slice + 7) & ~std::size_t{7};
  }
  const unsigned used = static_cast<unsigned>((count + slice - 1) / slice);
  if (used <= 1) {
    fn(ctx, 0, count);
    return;
  }

  const qmpi::LockGuard job_lock(job_mutex_);
  ensure_workers(used - 1);
  {
    const qmpi::LockGuard lock(mutex_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_count_ = count;
    job_slice_ = slice;
    job_workers_ = used - 1;
    remaining_ = used - 1;
    ++generation_;
  }
  wake_cv_.notify_all();

  // The submitter owns the last slice.
  fn(ctx, static_cast<std::size_t>(used - 1) * slice, count);

  qmpi::UniqueLock lock(mutex_);
  while (remaining_ != 0) done_cv_.wait(lock);
}

void ThreadPool::worker_main(unsigned index) {
  std::uint64_t seen = 0;
  qmpi::UniqueLock lock(mutex_);
  for (;;) {
    while (!stopping_ && generation_ == seen) wake_cv_.wait(lock);
    if (stopping_) return;
    seen = generation_;
    if (index >= job_workers_) continue;  // not a participant this job
    const RangeFn fn = job_fn_;
    void* ctx = job_ctx_;
    const std::size_t begin = static_cast<std::size_t>(index) * job_slice_;
    const std::size_t end = std::min(begin + job_slice_, job_count_);
    lock.unlock();
    fn(ctx, begin, end);
    lock.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

}  // namespace qmpi::sim
