#include "sim/fusion.hpp"

namespace qmpi::sim {

Gate1Q compose(const Gate1Q& a, const Gate1Q& b) {
  // Cap the label: long fusion runs would otherwise grow an O(k) string per
  // push (O(k^2) cumulative copying) on the very path fusion makes cheap.
  std::string name = a.name.size() + b.name.size() < 16
                         ? a.name + "*" + b.name
                         : "fused";
  return Gate1Q{{a.m[0] * b.m[0] + a.m[1] * b.m[2],
                 a.m[0] * b.m[1] + a.m[1] * b.m[3],
                 a.m[2] * b.m[0] + a.m[3] * b.m[2],
                 a.m[2] * b.m[1] + a.m[3] * b.m[3]},
                std::move(name)};
}

void FusionQueue::push(std::uint64_t qubit, const Gate1Q& gate) {
  for (Entry& e : pending_) {
    if (e.qubit == qubit) {
      e.gate = compose(gate, e.gate);
      return;
    }
  }
  pending_.push_back(Entry{qubit, gate});
}

}  // namespace qmpi::sim
