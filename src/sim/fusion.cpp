#include "sim/fusion.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "sim/kernels.hpp"

namespace qmpi::sim {

// A fused cluster must fit the block kernels' gather buffers.
static_assert(kMaxFusedQubits <= kernels::kMaxBlockQubits);

Gate1Q compose(const Gate1Q& a, const Gate1Q& b) {
  // Cap the label: long fusion runs would otherwise grow an O(k) string per
  // push (O(k^2) cumulative copying) on the very path fusion makes cheap.
  std::string name = a.name.size() + b.name.size() < 16
                         ? a.name + "*" + b.name
                         : "fused";
  return Gate1Q{{a.m[0] * b.m[0] + a.m[1] * b.m[2],
                 a.m[0] * b.m[1] + a.m[1] * b.m[3],
                 a.m[2] * b.m[0] + a.m[3] * b.m[2],
                 a.m[2] * b.m[1] + a.m[3] * b.m[3]},
                std::move(name)};
}

// ---------------------------------------------------------- GateCluster ---

bool GateCluster::touches(std::uint64_t qubit) const {
  return std::find(qubits_.begin(), qubits_.end(), qubit) != qubits_.end();
}

bool GateCluster::touches_any(std::span<const std::uint64_t> qs,
                              std::uint64_t target) const {
  if (touches(target)) return true;
  for (const std::uint64_t q : qs) {
    if (touches(q)) return true;
  }
  return false;
}

std::uint8_t GateCluster::bit_of(std::uint64_t qubit) {
  for (std::size_t j = 0; j < qubits_.size(); ++j) {
    if (qubits_[j] == qubit) return static_cast<std::uint8_t>(j);
  }
  qubits_.push_back(qubit);
  return static_cast<std::uint8_t>(qubits_.size() - 1);
}

void GateCluster::append(ClusterOp op) {
  if (!ops_.empty() && ops_.back().target == op.target &&
      ops_.back().ctrl_mask == op.ctrl_mask) {
    ops_.back().gate = compose(op.gate, ops_.back().gate);
    return;
  }
  ops_.push_back(std::move(op));
}

void GateCluster::push_op(const Gate1Q& gate,
                          std::span<const std::uint64_t> controls,
                          std::uint64_t target) {
  ClusterOp op;
  op.gate = gate;
  op.target = bit_of(target);
  for (const std::uint64_t c : controls) {
    op.ctrl_mask |= static_cast<std::uint8_t>(1U << bit_of(c));
  }
  append(std::move(op));
}

void GateCluster::merge(const GateCluster& other) {
  std::uint8_t remap[kMaxFusedQubits] = {};
  for (std::size_t j = 0; j < other.qubits_.size(); ++j) {
    remap[j] = bit_of(other.qubits_[j]);
  }
  for (const ClusterOp& op : other.ops_) {
    ClusterOp moved;
    moved.gate = op.gate;
    moved.target = remap[op.target];
    for (unsigned b = 0; b < kMaxFusedQubits; ++b) {
      if (op.ctrl_mask & (1U << b)) {
        moved.ctrl_mask |= static_cast<std::uint8_t>(1U << remap[b]);
      }
    }
    append(std::move(moved));
  }
}

std::vector<Complex> GateCluster::matrix() const {
  const std::size_t dim = 1ULL << qubits_.size();
  std::vector<Complex> m(dim * dim, Complex(0.0, 0.0));
  for (std::size_t j = 0; j < dim; ++j) m[j * dim + j] = Complex(1.0, 0.0);
  // Column c of the product is the run applied to |c>: replay the ops on
  // each column exactly as the flush sweep replays them on a block.
  std::array<Complex, 1ULL << kernels::kMaxBlockQubits> col;
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t r = 0; r < dim; ++r) col[r] = m[r * dim + c];
    for (const ClusterOp& op : ops_) {
      kernels::apply_1q_in_block(col.data(), dim, op.target, op.ctrl_mask,
                                 op.gate);
    }
    for (std::size_t r = 0; r < dim; ++r) m[r * dim + c] = col[r];
  }
  return m;
}

// ----------------------------------------------------------- FusionQueue ---

std::size_t FusionQueue::size() const {
  std::size_t total = 0;
  for (const GateCluster& c : pending_) total += c.num_ops();
  return total;
}

std::vector<GateCluster> FusionQueue::take() {
  // Plain move-out, no stale clear: the old drain() moved pending_ and then
  // cleared the (already empty) vector, while gates pushed by the apply
  // callback landed in the fresh pending_ and were silently deferred past
  // the flush boundary. Handing the batch to the caller and looping there
  // until empty() makes a reentrant push flush-correct by construction.
  return std::exchange(pending_, {});
}

void FusionQueue::push(const Gate1Q& gate,
                       std::span<const std::uint64_t> controls,
                       std::uint64_t target,
                       std::vector<GateCluster>& evicted) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].touches_any(controls, target)) hits.push_back(i);
  }

  if (hits.empty()) {
    pending_.emplace_back().push_op(gate, controls, target);
    return;
  }

  // Size of the merged run if every overlapping cluster and this gate
  // fused. Registers are small, clusters tiny: linear scans suffice.
  std::vector<std::uint64_t> uni(controls.begin(), controls.end());
  uni.push_back(target);
  std::size_t union_ops = 1;
  for (const std::size_t i : hits) {
    union_ops += pending_[i].num_ops();
    for (const std::uint64_t q : pending_[i].qubits()) {
      if (std::find(uni.begin(), uni.end(), q) == uni.end()) uni.push_back(q);
    }
  }
  std::sort(uni.begin(), uni.end());
  uni.erase(std::unique(uni.begin(), uni.end()), uni.end());

  if (uni.size() <= kMaxFusedQubits && union_ops <= kMaxFusedOps) {
    // Merge into the earliest overlapping cluster, in insertion order —
    // clusters are pairwise disjoint, so this ordering is the one the
    // insertion-order flush would have produced anyway.
    GateCluster& dst = pending_[hits[0]];
    for (std::size_t h = 1; h < hits.size(); ++h) dst.merge(pending_[hits[h]]);
    for (std::size_t h = hits.size(); h-- > 1;) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(hits[h]));
    }
    dst.push_op(gate, controls, target);
    return;
  }

  // Overflow: evict every overlapping cluster (insertion order) for
  // immediate application and start fresh with this gate. Non-overlapping
  // clusters stay queued — they are disjoint from everything evicted and
  // from the new gate, so the partial flush commutes exactly.
  for (const std::size_t i : hits) evicted.push_back(std::move(pending_[i]));
  for (std::size_t h = hits.size(); h-- > 0;) {
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(hits[h]));
  }
  pending_.emplace_back().push_op(gate, controls, target);
}

}  // namespace qmpi::sim
