#pragma once

/// \file thread_pool.hpp
/// Persistent worker-lane pool behind every O(2^n) sweep. See
/// docs/ARCHITECTURE.md §7.


#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace qmpi::sim {

/// Persistent worker pool for the state-vector hot loops.
///
/// The seed simulator forked and joined fresh std::threads on every gate,
/// paying thread-creation latency per operation. This pool parks long-lived
/// workers on a condition variable and dispatches chunked index ranges to
/// them, so a gate application costs one notify + one wait instead of N
/// pthread_create/join pairs (the same persistent-context discipline that
/// collective-engine codebases use for streams).
///
/// Dispatch is a *static* range split: lane `i` of `L` always receives the
/// same [begin, end) slice for a given (count, L), so elementwise loops are
/// bit-identical to the serial path no matter how threads are scheduled.
/// Reductions additionally need an order-fixed combine; see
/// StateVector::chunked_reduce, which partitions by a lane-independent chunk
/// size and sums partials in chunk order.
///
/// One job runs at a time (submissions from different threads serialize on
/// an internal mutex). Workers are spawned lazily, up to kMaxLanes - 1.
class ThreadPool {
 public:
  /// Process-wide pool shared by all StateVector instances.
  static ThreadPool& instance();

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Upper bound on lanes (submitting thread + workers) a job may use.
  static constexpr unsigned kMaxLanes = 64;

  /// Runs `fn(begin, end)` over [0, count) split across `lanes` lanes.
  /// The submitting thread executes the last slice itself and blocks until
  /// all worker slices are done. `lanes <= 1` (or a count too small to
  /// split) runs serially inline with no locking.
  template <typename Fn>
  void parallel_for(unsigned lanes, std::size_t count, Fn&& fn) {
    if (lanes <= 1 || count < 2) {
      if (count > 0) fn(std::size_t{0}, count);
      return;
    }
    run(lanes, count,
        [](void* ctx, std::size_t begin, std::size_t end) {
          (*static_cast<std::remove_reference_t<Fn>*>(ctx))(begin, end);
        },
        &fn);
  }

  /// Number of workers currently alive (for tests / introspection).
  std::size_t worker_count() const;

 private:
  using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  ThreadPool() = default;

  void run(unsigned lanes, std::size_t count, RangeFn fn, void* ctx);
  void ensure_workers(unsigned needed);
  void worker_main(unsigned index);

  /// Mutated only in ensure_workers (under both job_mutex_ and mutex_),
  /// read under mutex_ by worker_count() and lock-free by the destructor,
  /// which runs after the stopping_ handshake has quiesced every worker.
  /// Deliberately unannotated: no single capability covers that protocol.
  std::vector<std::thread> workers_;

  /// Serializes whole jobs: held by the submitting thread for the full
  /// dispatch + completion-wait, so job_* fields never change mid-job.
  /// Always taken before mutex_ (run() dispatches under both).
  qmpi::Mutex job_mutex_ QMPI_ACQUIRED_BEFORE(mutex_){
      "ThreadPool::job_mutex"};

  mutable qmpi::Mutex mutex_{"ThreadPool::mutex"};
  qmpi::CondVar wake_cv_;
  qmpi::CondVar done_cv_;
  std::uint64_t generation_ QMPI_GUARDED_BY(mutex_) = 0;
  bool stopping_ QMPI_GUARDED_BY(mutex_) = false;

  // Current job (valid while job_mutex_ is held by a submitter).
  RangeFn job_fn_ QMPI_GUARDED_BY(mutex_) = nullptr;
  void* job_ctx_ QMPI_GUARDED_BY(mutex_) = nullptr;
  std::size_t job_count_ QMPI_GUARDED_BY(mutex_) = 0;
  std::size_t job_slice_ QMPI_GUARDED_BY(mutex_) = 0;
  unsigned job_workers_ QMPI_GUARDED_BY(mutex_) = 0;  ///< participating workers
  unsigned remaining_ QMPI_GUARDED_BY(mutex_) = 0;  ///< unfinished worker slices
};

}  // namespace qmpi::sim
