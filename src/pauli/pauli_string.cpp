#include "pauli/pauli_string.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace qmpi::pauli {

char to_char(Op op) {
  switch (op) {
    case Op::I:
      return 'I';
    case Op::X:
      return 'X';
    case Op::Y:
      return 'Y';
    case Op::Z:
      return 'Z';
  }
  return '?';
}

Op op_from_char(char c) {
  switch (c) {
    case 'I':
      return Op::I;
    case 'X':
      return Op::X;
    case 'Y':
      return Op::Y;
    case 'Z':
      return Op::Z;
    default:
      throw std::invalid_argument(std::string("bad Pauli label '") + c + "'");
  }
}

namespace {
/// Single-qubit product table: a*b = phase * c.
/// Indexed [a][b] -> (c, phase) with I=0, X=1, Y=2, Z=3.
struct ProductEntry {
  Op op;
  Complex phase;
};

ProductEntry product(Op a, Op b) {
  if (a == Op::I) return {b, 1.0};
  if (b == Op::I) return {a, 1.0};
  if (a == b) return {Op::I, 1.0};
  const Complex i(0.0, 1.0);
  // XY=iZ, YZ=iX, ZX=iY, and the reverses pick up a minus sign.
  if (a == Op::X && b == Op::Y) return {Op::Z, i};
  if (a == Op::Y && b == Op::X) return {Op::Z, -i};
  if (a == Op::Y && b == Op::Z) return {Op::X, i};
  if (a == Op::Z && b == Op::Y) return {Op::X, -i};
  if (a == Op::Z && b == Op::X) return {Op::Y, i};
  /* a == Op::X && b == Op::Z */
  return {Op::Y, -i};
}
}  // namespace

PauliString PauliString::parse(const std::string& text, Complex coefficient) {
  PauliString result(coefficient);
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    if (token == "I") continue;
    if (token.size() < 2) {
      throw std::invalid_argument("bad Pauli token '" + token + "'");
    }
    const Op op = op_from_char(token[0]);
    const unsigned qubit = static_cast<unsigned>(std::stoul(token.substr(1)));
    result.multiply_right(qubit, op);
  }
  return result;
}

PauliString PauliString::from_ops(
    std::span<const std::pair<unsigned, Op>> ops, Complex coefficient) {
  PauliString result(coefficient);
  for (const auto& [qubit, op] : ops) result.multiply_right(qubit, op);
  return result;
}

Op PauliString::op_on(unsigned qubit) const {
  const auto it = ops_.find(qubit);
  return it == ops_.end() ? Op::I : it->second;
}

std::vector<unsigned> PauliString::support() const {
  std::vector<unsigned> out;
  out.reserve(ops_.size());
  for (const auto& [qubit, op] : ops_) out.push_back(qubit);
  return out;
}

unsigned PauliString::num_qubits() const {
  return ops_.empty() ? 0 : ops_.rbegin()->first + 1;
}

void PauliString::multiply_right(unsigned qubit, Op op) {
  if (op == Op::I) return;
  const auto it = ops_.find(qubit);
  if (it == ops_.end()) {
    ops_.emplace(qubit, op);
    return;
  }
  const auto [res, phase] = product(it->second, op);
  coefficient_ *= phase;
  if (res == Op::I) {
    ops_.erase(it);
  } else {
    it->second = res;
  }
}

PauliString operator*(const PauliString& a, const PauliString& b) {
  PauliString result = a;
  result.coefficient_ *= b.coefficient_;
  for (const auto& [qubit, op] : b.ops_) result.multiply_right(qubit, op);
  return result;
}

bool PauliString::commutes_with(const PauliString& other) const {
  // Two Pauli strings commute iff they anticommute on an even number of
  // qubits (distinct non-identity ops anticommute).
  int anticommuting = 0;
  for (const auto& [qubit, op] : ops_) {
    const Op o = other.op_on(qubit);
    if (o != Op::I && o != op) ++anticommuting;
  }
  return (anticommuting % 2) == 0;
}

PauliString PauliString::dagger() const {
  PauliString result = *this;
  result.coefficient_ = std::conj(result.coefficient_);
  return result;
}

std::string PauliString::key() const {
  std::ostringstream out;
  for (const auto& [qubit, op] : ops_) out << to_char(op) << qubit << ' ';
  return out.str();
}

std::string PauliString::str() const {
  std::ostringstream out;
  out << '(' << coefficient_.real();
  if (coefficient_.imag() >= 0) out << '+';
  out << coefficient_.imag() << "i)";
  if (ops_.empty()) {
    out << " I";
  } else {
    for (const auto& [qubit, op] : ops_) out << ' ' << to_char(op) << qubit;
  }
  return out.str();
}

bool operator==(const PauliString& a, const PauliString& b) {
  return a.ops_ == b.ops_ &&
         std::abs(a.coefficient_ - b.coefficient_) < 1e-12;
}

// -------------------------------------------------------------- PauliSum ---

PauliSum::PauliSum(std::initializer_list<PauliString> terms)
    : terms_(terms) {}

void PauliSum::add(PauliString term) { terms_.push_back(std::move(term)); }

void PauliSum::add(const PauliSum& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
}

void PauliSum::simplify(double eps) {
  std::unordered_map<std::string, std::size_t> index;
  std::vector<PauliString> combined;
  combined.reserve(terms_.size());
  for (const auto& term : terms_) {
    const std::string k = term.key();
    const auto it = index.find(k);
    if (it == index.end()) {
      index.emplace(k, combined.size());
      combined.push_back(term);
    } else {
      combined[it->second].set_coefficient(combined[it->second].coefficient() +
                                           term.coefficient());
    }
  }
  terms_.clear();
  for (auto& term : combined) {
    if (std::abs(term.coefficient()) > eps) terms_.push_back(std::move(term));
  }
}

PauliSum& PauliSum::operator*=(Complex scalar) {
  for (auto& term : terms_) term *= scalar;
  return *this;
}

PauliSum operator*(const PauliSum& a, const PauliSum& b) {
  PauliSum result;
  for (const auto& ta : a.terms_) {
    for (const auto& tb : b.terms_) result.add(ta * tb);
  }
  result.simplify();
  return result;
}

PauliSum operator+(PauliSum a, const PauliSum& b) {
  a.add(b);
  a.simplify();
  return a;
}

unsigned PauliSum::num_qubits() const {
  unsigned n = 0;
  for (const auto& term : terms_) n = std::max(n, term.num_qubits());
  return n;
}

std::vector<std::size_t> PauliSum::weight_histogram() const {
  std::vector<std::size_t> hist;
  for (const auto& term : terms_) {
    const std::size_t w = term.weight();
    if (w >= hist.size()) hist.resize(w + 1, 0);
    ++hist[w];
  }
  return hist;
}

std::string PauliSum::str() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out << " + ";
    out << terms_[i].str();
  }
  return out.str();
}

}  // namespace qmpi::pauli
