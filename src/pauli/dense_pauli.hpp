#pragma once

#include <bit>
#include <complex>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace qmpi::pauli {

/// Symplectic (bitmask) representation of a Pauli string on up to 64
/// qubits: qubit q carries X iff x_mask bit q is set, Z iff z_mask bit q is
/// set, Y iff both. Products are two XORs and a popcount — this is the hot
/// representation used by the fermion-to-qubit transforms when processing
/// the ~10^5-term molecular Hamiltonians of paper Figs. 5 and 7.
struct DensePauli {
  std::uint64_t x_mask = 0;
  std::uint64_t z_mask = 0;
  std::complex<double> coeff = 1.0;

  /// Number of qubits acted on non-trivially (Fig. 5's per-term qubit count).
  int weight() const { return std::popcount(x_mask | z_mask); }

  bool is_identity() const { return x_mask == 0 && z_mask == 0; }

  /// Multiplies a single-qubit Pauli onto the right.
  void mul_right(unsigned qubit, Op op);

  /// Full product (phases included).
  friend DensePauli operator*(const DensePauli& a, const DensePauli& b);

  bool commutes_with(const DensePauli& other) const {
    // Symplectic inner product: strings commute iff it is even.
    const int v = std::popcount(x_mask & other.z_mask) +
                  std::popcount(z_mask & other.x_mask);
    return (v % 2) == 0;
  }

  /// Operator-content key (ignores coefficient) for combining like terms.
  std::uint64_t key_lo() const { return x_mask; }
  std::uint64_t key_hi() const { return z_mask; }

  PauliString to_pauli_string() const;
  static DensePauli from_pauli_string(const PauliString& s);

  std::string str() const { return to_pauli_string().str(); }
};

inline void DensePauli::mul_right(unsigned qubit, Op op) {
  DensePauli rhs;
  switch (op) {
    case Op::I:
      return;
    case Op::X:
      rhs.x_mask = 1ULL << qubit;
      break;
    case Op::Z:
      rhs.z_mask = 1ULL << qubit;
      break;
    case Op::Y:
      rhs.x_mask = 1ULL << qubit;
      rhs.z_mask = 1ULL << qubit;
      break;
  }
  *this = *this * rhs;
}

inline DensePauli operator*(const DensePauli& a, const DensePauli& b) {
  // Write each string as c * i^{#Y} * X^x Z^z; then
  // (X^x1 Z^z1)(X^x2 Z^z2) = (-1)^{|z1 & x2|} X^{x1^x2} Z^{z1^z2}.
  // Folding the i^{#Y} bookkeeping back into the result coefficient:
  const int y1 = std::popcount(a.x_mask & a.z_mask);
  const int y2 = std::popcount(b.x_mask & b.z_mask);
  DensePauli out;
  out.x_mask = a.x_mask ^ b.x_mask;
  out.z_mask = a.z_mask ^ b.z_mask;
  const int y_out = std::popcount(out.x_mask & out.z_mask);
  const int swaps = std::popcount(a.z_mask & b.x_mask);
  // phase = i^{y1 + y2 - y_out} * (-1)^{swaps}
  int exponent = (y1 + y2 - y_out) % 4;
  if (exponent < 0) exponent += 4;
  static constexpr std::complex<double> kIPow[4] = {
      {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  out.coeff = a.coeff * b.coeff * kIPow[exponent] *
              ((swaps % 2) ? -1.0 : 1.0);
  return out;
}

inline PauliString DensePauli::to_pauli_string() const {
  PauliString out(coeff);
  for (unsigned q = 0; q < 64; ++q) {
    const bool x = (x_mask >> q) & 1ULL;
    const bool z = (z_mask >> q) & 1ULL;
    if (x && z) {
      out.multiply_right(q, Op::Y);
    } else if (x) {
      out.multiply_right(q, Op::X);
    } else if (z) {
      out.multiply_right(q, Op::Z);
    }
  }
  // multiply_right(Y) on a fresh position does not introduce phases, so the
  // coefficient is preserved exactly.
  return out;
}

inline DensePauli DensePauli::from_pauli_string(const PauliString& s) {
  DensePauli out;
  out.coeff = s.coefficient();
  for (const auto& [qubit, op] : s.ops()) {
    const std::uint64_t bit = 1ULL << qubit;
    switch (op) {
      case Op::X:
        out.x_mask |= bit;
        break;
      case Op::Z:
        out.z_mask |= bit;
        break;
      case Op::Y:
        out.x_mask |= bit;
        out.z_mask |= bit;
        break;
      case Op::I:
        break;
    }
  }
  return out;
}

/// A sum of DensePauli terms with hash-based term combining.
class DensePauliSum {
 public:
  void add(const DensePauli& term, double eps = 0.0) {
    if (std::abs(term.coeff) <= eps && eps > 0.0) return;
    const Key k{term.x_mask, term.z_mask};
    auto [it, inserted] = index_.try_emplace(k, terms_.size());
    if (inserted) {
      terms_.push_back(term);
    } else {
      terms_[it->second].coeff += term.coeff;
    }
  }

  /// Drops terms with |coeff| <= eps.
  void prune(double eps = 1e-12) {
    std::vector<DensePauli> kept;
    kept.reserve(terms_.size());
    for (const auto& t : terms_) {
      if (std::abs(t.coeff) > eps) kept.push_back(t);
    }
    terms_ = std::move(kept);
    index_.clear();
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      index_.emplace(Key{terms_[i].x_mask, terms_[i].z_mask}, i);
    }
  }

  const std::vector<DensePauli>& terms() const { return terms_; }
  std::size_t size() const { return terms_.size(); }

  /// Histogram of term weights (paper Fig. 5).
  std::vector<std::size_t> weight_histogram() const {
    std::vector<std::size_t> hist;
    for (const auto& t : terms_) {
      const auto w = static_cast<std::size_t>(t.weight());
      if (w >= hist.size()) hist.resize(w + 1, 0);
      ++hist[w];
    }
    return hist;
  }

 private:
  struct Key {
    std::uint64_t x, z;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style mix of the two masks.
      std::uint64_t h = k.x * 0x9E3779B97F4A7C15ULL;
      h ^= (k.z + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h);
    }
  };
  std::vector<DensePauli> terms_;
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

}  // namespace qmpi::pauli
