#pragma once

#include <complex>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace qmpi::pauli {

using Complex = std::complex<double>;

/// Single-qubit Pauli operator label.
enum class Op : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

char to_char(Op op);
Op op_from_char(char c);

/// A Pauli string: a sparse map qubit-index -> {X,Y,Z} together with a
/// complex coefficient, e.g. 0.5 * X0 Z3 Z4.
///
/// This is the workhorse behind the fermion-to-qubit encodings (paper §7.3):
/// Jordan-Wigner and Bravyi-Kitaev transforms produce PauliSums, and the
/// per-term qubit support drives Figs. 5 and 7.
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(Complex coefficient) : coefficient_(coefficient) {}

  /// Parses e.g. "X0 Z2 Y11" (identity for the empty string).
  static PauliString parse(const std::string& text,
                           Complex coefficient = 1.0);

  /// Builds from (qubit, op) pairs; duplicate qubits are multiplied out.
  static PauliString from_ops(
      std::span<const std::pair<unsigned, Op>> ops, Complex coefficient = 1.0);

  Complex coefficient() const { return coefficient_; }
  void set_coefficient(Complex c) { coefficient_ = c; }

  /// Number of qubits the string acts on non-trivially. This is the
  /// "number of qubits per term" of paper Fig. 5.
  std::size_t weight() const { return ops_.size(); }

  bool is_identity() const { return ops_.empty(); }

  /// The Pauli op on `qubit` (I if untouched).
  Op op_on(unsigned qubit) const;

  /// Sorted non-trivial support (qubit indices).
  std::vector<unsigned> support() const;

  /// Largest qubit index + 1 (0 for identity).
  unsigned num_qubits() const;

  const std::map<unsigned, Op>& ops() const { return ops_; }

  /// Right-multiplies by a single-qubit Pauli, tracking the phase
  /// (e.g. X*Y = iZ). Used when composing operator products.
  void multiply_right(unsigned qubit, Op op);

  /// Product of two strings (phases included).
  friend PauliString operator*(const PauliString& a, const PauliString& b);

  PauliString& operator*=(Complex scalar) {
    coefficient_ *= scalar;
    return *this;
  }

  /// True iff the two strings commute (qubit-wise anticommutation count is
  /// even).
  bool commutes_with(const PauliString& other) const;

  /// Hermitian conjugate (conjugates the coefficient; Pauli ops are
  /// self-adjoint).
  PauliString dagger() const;

  /// Canonical text form, e.g. "(0.5+0i) X0 Z2"; identity prints "I".
  std::string str() const;

  /// Key identifying the operator content (ignoring the coefficient); used
  /// for combining like terms in PauliSum.
  std::string key() const;

  friend bool operator==(const PauliString& a, const PauliString& b);

 private:
  std::map<unsigned, Op> ops_;
  Complex coefficient_ = 1.0;
};

/// A linear combination of Pauli strings (a qubit Hamiltonian).
class PauliSum {
 public:
  PauliSum() = default;
  PauliSum(std::initializer_list<PauliString> terms);

  void add(PauliString term);
  void add(const PauliSum& other);

  /// Combines like terms and drops those with |coefficient| < eps.
  void simplify(double eps = 1e-12);

  const std::vector<PauliString>& terms() const { return terms_; }
  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  PauliSum& operator*=(Complex scalar);
  friend PauliSum operator*(const PauliSum& a, const PauliSum& b);
  friend PauliSum operator+(PauliSum a, const PauliSum& b);

  /// Largest qubit index + 1 over all terms.
  unsigned num_qubits() const;

  /// Histogram of term weights: result[w] = number of terms acting on
  /// exactly w qubits (paper Fig. 5).
  std::vector<std::size_t> weight_histogram() const;

  std::string str() const;

 private:
  std::vector<PauliString> terms_;
};

}  // namespace qmpi::pauli
