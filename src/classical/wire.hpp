#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classical/error.hpp"

namespace qmpi::classical {

/// Hard ceiling on one framed message (header + body). Frames above this
/// are rejected on both sides: a sender-side check stops a runaway payload
/// before it hits the wire, a receiver-side check stops a corrupt or
/// malicious length prefix from driving a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

namespace wire_detail {
/// Guards every count the wire encoders narrow to u32: a count that does
/// not fit must throw, never wrap — a silently truncated length prefix
/// desynchronizes the framing for every later field. The lint rule
/// wire-narrowing (scripts/lint/run_lints.py) requires each
/// `u32(static_cast<...>(x.size()))` write to route through this check.
inline void check_u32_count(std::size_t n, const char* what) {
  if (n > 0xffffffffu) {
    throw QmpiError(std::string(what) + " count " + std::to_string(n) +
                    " does not fit the u32 wire format");
  }
}
}  // namespace wire_detail

/// Little-endian append-only serializer for frame bodies. All multi-byte
/// integers on the wire are little-endian regardless of host order, so a
/// heterogeneous job (or a future big-endian port) cannot silently corrupt
/// envelopes.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(std::span<const std::byte> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Length-prefixed byte blob (u32 count + raw bytes).
  void blob(std::span<const std::byte> b) {
    wire_detail::check_u32_count(b.size(), "blob byte");
    u32(static_cast<std::uint32_t>(b.size()));
    bytes(b);
  }
  /// Length-prefixed UTF-8 string.
  void str(std::string_view s) {
    wire_detail::check_u32_count(s.size(), "string byte");
    u32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) out_.push_back(static_cast<std::byte>(c));
  }

  std::vector<std::byte> take() { return std::move(out_); }
  const std::vector<std::byte>& data() const { return out_; }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }
  std::vector<std::byte> out_;
};

/// Bounds-checked little-endian reader over a frame body. Truncated bodies
/// raise QmpiError (a framing bug or a corrupt stream, never a user error).
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::span<const std::byte> bytes(std::size_t n) { return take(n); }
  std::span<const std::byte> blob() { return take(u32()); }
  std::string str() {
    const auto b = blob();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  /// Everything not yet consumed (opaque payload tails).
  std::span<const std::byte> rest() { return take(data_.size() - pos_); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> take(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw QmpiError("malformed transport frame: body truncated (wanted " +
                      std::to_string(n) + " bytes, " +
                      std::to_string(data_.size() - pos_) + " left)");
    }
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::uint64_t get_le(int n) {
    const auto b = take(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    }
    return v;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Frame types of the hub protocol (see socket_transport.hpp for the
/// conversation structure). The numeric values are part of the wire format;
/// append only.
enum class FrameType : std::uint8_t {
  kHello = 1,      ///< client->hub: magic, version, proc id
  kHelloAck = 2,   ///< hub->client: process count
  kRunBegin = 3,   ///< client->hub: req id, epoch, run config
  kRunReady = 4,   ///< hub->client: req id (run is live, backend reset)
  kPost = 5,       ///< client->hub: routed classical message
  kDeliver = 6,    ///< hub->client: classical message for a local rank
  kCtxAlloc = 7,   ///< client->hub: req id (fresh communicator context)
  kCtxId = 8,      ///< hub->client: req id, context id
  kSim = 9,        ///< client->hub: req id, opaque quantum op request
  kSimResult = 10, ///< hub->client: req id, opaque result
  kSimError = 11,  ///< hub->client: req id, remote simulator error string
  kRunEnd = 12,    ///< client->hub: req id, epoch, resource totals
  kRunEndAck = 13, ///< hub->client: req id, world-summed totals
  kAbort = 14,     ///< either way: epoch, human-readable reason
  kSimBatch = 15,  ///< client->hub: epoch, opaque batched quantum ops
                   ///< (one-way: no req id, no reply on success; a
                   ///< failure comes back as kSimError with req id 0)
  // Peer data-plane frames (direct rank-process <-> rank-process links
  // brokered by the hub at the run-begin barrier; never seen by the hub).
  kPeerHello = 16, ///< dialer->listener: magic, version, proc id, epoch
  kPeerPost = 17,  ///< dialer->listener: routed classical message
                   ///< (same epoch-tagged body layout as kPost)
  kSimFence = 18,  ///< client->hub: req id; reply proves every earlier
                   ///< one-way op batch on this connection has executed
                   ///< (a direct peer send fences first, restoring the
                   ///< ops-before-message order hub routing gave for free)
  kSimFenceAck = 19,  ///< hub->client: req id
  // Multi-tenant job-service frames (qmpid; see src/service/). One TCP
  // connection carries exactly one session; every post-open frame is
  // stamped with the (session id, epoch) pair the service issued, so a
  // frame forged for another session is detectable — and dropped — on
  // arrival.
  kSvcOpen = 20,    ///< client->svc: req id, magic, version, session config
  kSvcAccept = 21,  ///< svc->client: req id, session id, epoch
  kSvcReject = 22,  ///< svc->client: req id, reject kind, requested/available
                    ///< amplitude budget, human-readable reason
  kSvcCall = 23,    ///< client->svc: req id, session, epoch, opaque quantum op
  kSvcResult = 24,  ///< svc->client: req id, opaque reply
  kSvcError = 25,   ///< svc->client: req id (0 = deferred batch failure),
                    ///< simulator error string
  kSvcBatch = 26,   ///< client->svc: session, epoch, opaque batched quantum
                    ///< ops (one-way; failure latches and comes back as a
                    ///< req-id-0 kSvcError, exactly like the hub's kSimBatch)
  kSvcClose = 27,   ///< client->svc: req id, session, epoch (orderly close)
  kSvcClosed = 28,  ///< svc->client: req id, session op count (close ack)
};

struct Frame {
  FrameType type;
  std::vector<std::byte> body;
};

/// Writes one length-prefixed frame (u32 length, u8 type, body) to `fd`.
/// Throws QmpiError if the frame exceeds kMaxFrameBytes or the peer dies
/// mid-write (EPIPE/ECONNRESET surface with the peer's role in the text).
void write_frame(int fd, FrameType type, std::span<const std::byte> body);

/// Reads one frame. Throws QmpiError on clean EOF ("peer closed"), on EOF
/// mid-frame ("died mid-message"), and on a length prefix above
/// kMaxFrameBytes ("oversized frame") — the three transport failure modes
/// callers are expected to handle by failing the job.
Frame read_frame(int fd);

}  // namespace qmpi::classical
