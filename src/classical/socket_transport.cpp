#include "classical/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace qmpi::classical {

namespace {

constexpr std::uint32_t kHelloMagic = 0x51'4d'50'49;  // "QMPI"
// v2: kRunBegin advertises a peer-listener address, kRunReady returns the
// brokered address table, and the kPeerHello/kPeerPost/kSimFence frames
// exist. The HELLO version check keeps mixed-version jobs from silently
// misparsing the new barrier bodies.
constexpr std::uint16_t kWireVersion = 2;

std::string errno_text() { return std::strerror(errno); }

/// Marks a socket close-on-exec so forked rank processes never inherit
/// the hub's listener or connections (an inherited bound port would keep
/// the address in use after the launcher dies).
void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// read(2) exactly `len` bytes. Returns false on clean EOF at offset 0;
/// EOF mid-buffer is a peer that died between frames' halves.
bool read_all(int fd, std::byte* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw QmpiError(std::string("transport read failed: ") + errno_text());
    }
    if (n == 0) {
      if (off == 0) return false;
      throw QmpiError(
          "transport peer died mid-message (connection closed after " +
          std::to_string(off) + " of " + std::to_string(len) +
          " expected bytes)");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Encodes the shared routed-message layout used by kPost and kDeliver:
/// (epoch, dest, source, tag, channel, context, payload). The epoch pins
/// the message to one run, so a delivery that races an abort broadcast can
/// never be mistaken for the next run's traffic; the hub forwards the body
/// verbatim after peeking at the (epoch, dest) prefix.
std::vector<std::byte> encode_routed(std::uint64_t epoch, int dest,
                                     const Message& msg) {
  WireWriter w;
  w.u64(epoch);
  w.i32(dest);
  w.i32(msg.source);
  w.i32(msg.tag);
  w.u8(static_cast<std::uint8_t>(msg.channel));
  w.u64(msg.context);
  w.bytes(msg.payload);
  return w.take();
}

/// Decodes the fields after the epoch (the caller has already read it).
std::pair<int, Message> decode_routed_after_epoch(WireReader& r) {
  const int dest = r.i32();
  Message msg;
  msg.source = r.i32();
  msg.tag = r.i32();
  msg.channel = static_cast<ChannelKind>(r.u8());
  msg.context = r.u64();
  const auto payload = r.rest();
  msg.payload.assign(payload.begin(), payload.end());
  return {dest, std::move(msg)};
}

void encode_run_config(WireWriter& w, const RunConfig& cfg) {
  w.u32(cfg.num_ranks);
  w.u64(cfg.seed);
  w.u8(cfg.backend);
  w.u32(cfg.num_shards);
  w.u32(cfg.sim_threads);
}

RunConfig decode_run_config(WireReader& r) {
  RunConfig cfg;
  cfg.num_ranks = r.u32();
  cfg.seed = r.u64();
  cfg.backend = r.u8();
  cfg.num_shards = r.u32();
  cfg.sim_threads = r.u32();
  return cfg;
}

}  // namespace

// ------------------------------------------------------- socket helpers ---

namespace net {

int listen_tcp(std::uint16_t port, int backlog, const char* role,
               std::uint16_t& bound_port, bool loopback_only) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw QmpiError(std::string(role) + ": cannot create socket: " +
                    errno_text());
  }
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string what = errno_text();
    ::close(fd);
    throw QmpiError(std::string(role) + ": cannot bind " +
                    (loopback_only ? "127.0.0.1" : "0.0.0.0") + ":" +
                    std::to_string(port) + ": " + what);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string what = errno_text();
    ::close(fd);
    throw QmpiError(std::string(role) + ": listen failed: " + what);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port = ntohs(addr.sin_port);
  return fd;
}

int dial_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  set_cloexec(fd);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    if (::poll(&p, 1, timeout_ms) != 1) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace net

// -------------------------------------------------------------- framing ---

void write_frame(int fd, FrameType type, std::span<const std::byte> body) {
  if (body.size() + 1 > kMaxFrameBytes) {
    throw QmpiError("refusing to send oversized transport frame: " +
                    std::to_string(body.size()) + " bytes exceeds the " +
                    std::to_string(kMaxFrameBytes) +
                    "-byte frame limit (split the payload)");
  }
  WireWriter header;
  wire_detail::check_u32_count(body.size() + 1, "frame byte");
  header.u32(static_cast<std::uint32_t>(body.size() + 1));
  header.u8(static_cast<std::uint8_t>(type));
  const auto& head = header.data();
  // Gather write: header and body leave in one sendmsg with no copy of
  // the (possibly multi-megabyte) body, and TCP_NODELAY cannot split the
  // 5-byte header into its own segment.
  iovec iov[2];
  iov[0].iov_base = const_cast<std::byte*>(head.data());
  iov[0].iov_len = head.size();
  iov[1].iov_base = const_cast<std::byte*>(body.data());
  iov[1].iov_len = body.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = body.empty() ? 1 : 2;
  std::size_t sent = 0;
  const std::size_t total = head.size() + body.size();
  while (sent < total) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw QmpiError(std::string("transport write failed: ") + errno_text() +
                      " (peer process likely died mid-message)");
    }
    sent += static_cast<std::size_t>(n);
    // Advance the iovecs past the bytes the kernel took (partial writes
    // are rare on loopback but must not corrupt the stream).
    std::size_t consumed = static_cast<std::size_t>(n);
    while (consumed > 0 && msg.msg_iovlen > 0) {
      if (consumed >= msg.msg_iov[0].iov_len) {
        consumed -= msg.msg_iov[0].iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<std::byte*>(msg.msg_iov[0].iov_base) + consumed;
        msg.msg_iov[0].iov_len -= consumed;
        consumed = 0;
      }
    }
  }
}

Frame read_frame(int fd) {
  std::byte len_bytes[4];
  if (!read_all(fd, len_bytes, 4)) {
    throw QmpiError("transport peer closed the connection");
  }
  WireReader len_reader(std::span<const std::byte>(len_bytes, 4));
  const std::uint32_t len = len_reader.u32();
  if (len == 0) {
    throw QmpiError("malformed transport frame: zero-length frame");
  }
  if (len > kMaxFrameBytes) {
    throw QmpiError(
        "oversized transport frame rejected: header announces " +
        std::to_string(len) + " bytes, limit is " +
        std::to_string(kMaxFrameBytes) +
        " (corrupt stream or non-QMPI peer on this port)");
  }
  // Read the type byte, then the body straight into its final buffer —
  // no intermediate copy on the routing hot path.
  std::byte type_byte;
  if (!read_all(fd, &type_byte, 1)) {
    throw QmpiError("transport peer died mid-message (frame header "
                    "arrived, body never did)");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.body.resize(len - 1);
  if (!frame.body.empty() &&
      !read_all(fd, frame.body.data(), frame.body.size())) {
    throw QmpiError("transport peer died mid-message (frame header "
                    "arrived, body never did)");
  }
  return frame;
}

// ------------------------------------------------------------ placement ---

RankBlock rank_block(int num_ranks, int nprocs, int proc) {
  const int base = num_ranks / nprocs;
  const int rem = num_ranks % nprocs;
  RankBlock b;
  b.first = proc * base + std::min(proc, rem);
  b.count = base + (proc < rem ? 1 : 0);
  return b;
}

int rank_owner(int num_ranks, int nprocs, int world_rank) {
  const int base = num_ranks / nprocs;
  const int rem = num_ranks % nprocs;
  const int fat = rem * (base + 1);  // ranks living in (base+1)-sized blocks
  if (world_rank < fat) return world_rank / (base + 1);
  return rem + (world_rank - fat) / base;
}

// ------------------------------------------------------------------ hub ---

Hub::Hub(int nprocs, std::uint16_t port, Services services)
    : nprocs_(nprocs), services_(std::move(services)) {
  sim_failed_.assign(static_cast<std::size_t>(nprocs), std::string());
  conns_.reserve(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) conns_.push_back(std::make_unique<Conn>());

  listen_fd_ = net::listen_tcp(port, nprocs, "hub", port_);
}

Hub::~Hub() {
  stop();
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Hub::serve() {
  while (true) {
    {
      const qmpi::LockGuard lock(mu_);
      if (stopping_ || connected_ == nprocs_) break;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      const qmpi::LockGuard lock(mu_);
      if (stopping_) break;
      throw QmpiError("hub: accept failed: " + errno_text());
    }
    set_cloexec(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // HELLO handshake identifies which process this connection is. A
    // receive timeout bounds it: a connection that never speaks (port
    // scanner, rank crashed right after connect) must not wedge the
    // accept loop and with it the whole job launch.
    timeval hello_timeout{};
    hello_timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &hello_timeout,
                 sizeof(hello_timeout));
    int proc = -1;
    try {
      const Frame hello = read_frame(fd);
      WireReader r(hello.body);
      const std::uint32_t magic = r.u32();
      const std::uint16_t version = r.u16();
      const int claimed = r.u16();
      if (hello.type != FrameType::kHello || magic != kHelloMagic ||
          version != kWireVersion || claimed < 0 || claimed >= nprocs_) {
        throw QmpiError("hub: bad HELLO (not a QMPI rank process, or "
                        "version/proc-id mismatch)");
      }
      proc = claimed;
    } catch (const QmpiError&) {
      ::close(fd);
      continue;  // a port scanner or a malformed peer; keep serving
    }

    {
      const qmpi::LockGuard lock(mu_);
      if (stopping_) {
        // stop() already swept the registered connections; anything
        // accepted after that must not spawn an unstoppable reader.
        ::close(fd);
        break;
      }
      Conn& conn = *conns_[static_cast<std::size_t>(proc)];
      if (conn.claimed) {
        // Duplicate proc id (first connection wins) or a reconnect after
        // that process already left the job — either way it must not
        // count toward connected_, or serve() would stop accepting while
        // a real process is still on its way.
        ::close(fd);
        continue;
      }
      const timeval no_timeout{};  // handshake is over; reads block again
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &no_timeout,
                   sizeof(no_timeout));
      {
        // fd/open are read under write_mu by stop() and send_to(); take
        // it here too so registration is visible under either guard.
        const qmpi::LockGuard wlock(conn.write_mu);
        conn.fd = fd;
        conn.open = true;
      }
      conn.claimed = true;
      ++connected_;
      ++alive_;
      conn.reader = std::thread([this, proc] { reader_loop(proc); });
    }
    WireWriter ack;
    ack.u16(static_cast<std::uint16_t>(nprocs_));
    try {
      send_to(proc, FrameType::kHelloAck, ack.data());
    } catch (const QmpiError&) {
      // reader_loop will observe the dead socket and clean up.
    }
  }
  // All processes connected (or stop requested): wait for them to leave.
  qmpi::UniqueLock lock(mu_);
  while (alive_ != 0 && !stopping_) done_cv_.wait(lock);
}

int Hub::connected_count() {
  const qmpi::LockGuard lock(mu_);
  return connected_;
}

void Hub::stop() {
  {
    const qmpi::LockGuard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Only shutdown() here — the fd stays valid (and un-recyclable) until
    // the destructor closes it after serve() has returned, so a racing
    // accept() can never operate on a reused descriptor number.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  // Shut each connection down under its write mutex: on_disconnect closes
  // fds under the same mutex, so we can never SHUT_RDWR a descriptor the
  // kernel has already recycled for another socket.
  for (auto& conn : conns_) {
    const qmpi::LockGuard wlock(conn->write_mu);
    if (conn->open) ::shutdown(conn->fd, SHUT_RDWR);
  }
  done_cv_.notify_all();
}

void Hub::send_to(int proc, FrameType type, std::span<const std::byte> body) {
  Conn& conn = *conns_[static_cast<std::size_t>(proc)];
  const qmpi::LockGuard lock(conn.write_mu);
  if (!conn.open) return;  // already gone; routing noticed separately
  write_frame(conn.fd, type, body);
}

void Hub::reader_loop(int proc) {
  // Catch std::exception, not just QmpiError: anything escaping a frame
  // handler (bad_alloc on a huge frame, an unexpected service error) must
  // fail this connection's job, never std::terminate the whole launcher.
  try {
    while (true) {
      Frame frame = read_frame(conns_[static_cast<std::size_t>(proc)]->fd);
      handle_frame(proc, std::move(frame));
    }
  } catch (const std::exception& e) {
    const qmpi::LockGuard lock(mu_);
    // A process leaving mid-run kills the job; between runs it is a normal
    // exit (the gtest binary finished).
    if (run_active_ || begin_count_ > 0 || end_count_ > 0) {
      abort_run_locked(proc,
                       "rank process " + std::to_string(proc) +
                           " left the job mid-run: " + e.what());
    }
    on_disconnect(proc);
  }
}

void Hub::on_disconnect(int proc) {
  Conn& conn = *conns_[static_cast<std::size_t>(proc)];
  {
    const qmpi::LockGuard wlock(conn.write_mu);
    if (conn.open) {
      ::close(conn.fd);
      conn.open = false;
    }
  }
  --alive_;
  ++departed_;  // a process never reconnects; later begin barriers must fail
  if (alive_ == 0) done_cv_.notify_all();
}

void Hub::abort_run_locked(int origin_proc, const std::string& reason) {
  // A failed begin barrier still consumes its epoch so the next run's
  // RUN_BEGINs line up (clients already incremented their counters).
  const bool begin_phase = pending_cfg_.has_value();
  const std::uint64_t epoch = begin_phase ? hub_epoch_ + 1 : hub_epoch_;
  // One broadcast per failed epoch — scoped to the epoch, not "until the
  // next run goes live", so a failure in the very next begin phase still
  // broadcasts instead of hanging every process in begin_run.
  if (aborted_epoch_ == epoch) return;
  aborted_epoch_ = epoch;
  if (begin_phase) hub_epoch_ = epoch;
  run_active_ = false;
  for (auto& failed : sim_failed_) failed.clear();
  pending_cfg_.reset();
  begin_count_ = 0;
  begin_req_ids_.clear();
  begin_addrs_.clear();
  end_count_ = 0;
  end_req_ids_.clear();
  end_totals_.clear();

  WireWriter w;
  w.u64(epoch);
  w.str(reason);
  for (int p = 0; p < nprocs_; ++p) {
    if (p == origin_proc) continue;  // the origin already knows
    try {
      send_to(p, FrameType::kAbort, w.data());
    } catch (const QmpiError&) {
      // That peer is dying too; its reader will clean up.
    }
  }
}

void Hub::handle_frame(int proc, Frame frame) {
  switch (frame.type) {
    case FrameType::kPost: {
      // Peek only at the routing prefix (epoch + dest); the body is
      // forwarded verbatim as the kDeliver body, so routing never copies
      // or re-encodes the payload.
      WireReader r(frame.body);
      const std::uint64_t epoch = r.u64();
      const int dest = r.i32();
      int owner = -1;
      {
        const qmpi::LockGuard lock(mu_);
        if (!run_active_ || epoch != hub_epoch_ || dest < 0 ||
            dest >= static_cast<int>(active_cfg_.num_ranks)) {
          return;  // stale traffic from an aborted/finished run
        }
        owner = rank_owner(static_cast<int>(active_cfg_.num_ranks), nprocs_,
                           dest);
      }
      // The epoch check above can race an abort broadcast (mu_ is released
      // before the write), but the delivery still carries its epoch, so the
      // receiving client drops it if its run has moved on.
      try {
        send_to(owner, FrameType::kDeliver, frame.body);
      } catch (const QmpiError& e) {
        const qmpi::LockGuard lock(mu_);
        abort_run_locked(-1, "cannot deliver to rank process " +
                                 std::to_string(owner) + ": " + e.what());
      }
      return;
    }

    case FrameType::kSimBatch: {
      // One-way pipelined quantum ops: epoch-tagged like kPost (a batch
      // from an aborted run must never execute against the next run's
      // backend), executed synchronously on this reader thread so
      // per-connection FIFO makes "batch frame before classical frame"
      // mean "ops applied before the message is routed". No reply on
      // success; a failure travels back as a req-id-0 kSimError, which
      // the client surfaces at its next synchronization point.
      WireReader r(frame.body);
      const std::uint64_t epoch = r.u64();
      {
        const qmpi::LockGuard lock(mu_);
        if (!run_active_ || epoch != hub_epoch_) return;  // stale batch
        // This process's op stream already broke: later batches may be
        // in flight ahead of the error notice, and executing them would
        // apply ops "after" the failure. Drop them.
        if (!sim_failed_[static_cast<std::size_t>(proc)].empty()) return;
      }
      const auto request = r.rest();
      try {
        const qmpi::LockGuard sim_lock(sim_mu_);
        if (!services_.sim) {
          throw QmpiError("hub has no quantum service configured");
        }
        (void)services_.sim(request);
      } catch (const std::exception& e) {
        {
          const qmpi::LockGuard lock(mu_);
          auto& reason = sim_failed_[static_cast<std::size_t>(proc)];
          if (reason.empty()) reason = e.what();
        }
        WireWriter err;
        err.u64(0);  // req id 0: asynchronous batch error
        err.str(e.what());
        send_to(proc, FrameType::kSimError, err.data());
      }
      return;
    }

    case FrameType::kSim: {
      WireReader r(frame.body);
      const std::uint64_t req_id = r.u64();
      const auto request = r.rest();
      WireWriter reply;
      reply.u64(req_id);
      {
        // A request behind a failed batch from the same process must not
        // observe the broken state; answer it with the root cause (this
        // also makes the deferred error deterministic: even if the
        // req-id-0 notice races, the next round trip reports it).
        const qmpi::LockGuard lock(mu_);
        const auto& reason = sim_failed_[static_cast<std::size_t>(proc)];
        if (!reason.empty()) {
          reply.str(reason);
          send_to(proc, FrameType::kSimError, reply.data());
          return;
        }
      }
      FrameType reply_type = FrameType::kSimResult;
      try {
        std::vector<std::byte> result;
        {
          // The sim mutex is the quantum serialization point: ops from all
          // ranks execute in arrival order, exactly like the in-process
          // SimServer command thread. It is separate from mu_ so an
          // O(2^n) sweep never stalls classical routing.
          const qmpi::LockGuard sim_lock(sim_mu_);
          if (!services_.sim) {
            throw QmpiError("hub has no quantum service configured");
          }
          result = services_.sim(request);
        }
        reply.bytes(result);
      } catch (const std::exception& e) {
        reply_type = FrameType::kSimError;
        reply.str(e.what());
      }
      send_to(proc, reply_type, reply.data());
      return;
    }

    case FrameType::kCtxAlloc: {
      WireReader r(frame.body);
      const std::uint64_t req_id = r.u64();
      std::uint64_t ctx = 0;
      {
        const qmpi::LockGuard lock(mu_);
        ctx = next_context_++;
      }
      WireWriter reply;
      reply.u64(req_id);
      reply.u64(ctx);
      send_to(proc, FrameType::kCtxId, reply.data());
      return;
    }

    case FrameType::kSimFence: {
      // Pure ack. kSimBatch frames execute synchronously on this reader
      // thread, so by the time this frame is handled every batch written
      // before it has already run (or been recorded as failed — the
      // req-id-0 kSimError precedes this ack on the FIFO connection, so
      // the client sees the failure before the fence completes).
      WireReader r(frame.body);
      const std::uint64_t req_id = r.u64();
      WireWriter reply;
      reply.u64(req_id);
      send_to(proc, FrameType::kSimFenceAck, reply.data());
      return;
    }

    case FrameType::kRunBegin: {
      WireReader r(frame.body);
      const std::uint64_t req_id = r.u64();
      const std::uint64_t epoch = r.u64();
      const RunConfig cfg = decode_run_config(r);
      // Peer-listener advertisement (wire v2). Tolerate its absence so a
      // minimal client (tests driving the barrier directly) just reads
      // back a table of port-0 entries, i.e. all-hub routing.
      PeerAddr addr;
      if (r.remaining() > 0) {
        addr.host = r.str();
        addr.port = r.u16();
      }
      const qmpi::LockGuard lock(mu_);
      if (departed_ > 0) {
        // A peer left the job for good between runs; this barrier can
        // never complete, so fail it immediately instead of hanging.
        const std::string reason =
            std::to_string(departed_) + " rank process(es) already left "
            "the job; a new run cannot start";
        if (!pending_cfg_.has_value()) hub_epoch_ = epoch;  // consume it
        WireWriter abort_body;
        abort_body.u64(epoch);
        abort_body.str(reason);
        try {
          send_to(proc, FrameType::kAbort, abort_body.data());
        } catch (const QmpiError&) {
        }
        return;
      }
      if (epoch != hub_epoch_ + 1) {
        // This process is re-beginning an epoch the hub already consumed
        // (its previous begin raced an abort whose broadcast it ignored
        // because it had not entered the barrier yet). The epoch-scoped
        // broadcast dedup may suppress a re-broadcast, so tell this
        // process directly.
        const std::string reason =
            "process " + std::to_string(proc) + " began run epoch " +
            std::to_string(epoch) + " but the hub is at epoch " +
            std::to_string(hub_epoch_) + " (a previous run was aborted)";
        WireWriter abort_body;
        abort_body.u64(epoch);
        abort_body.str(reason);
        try {
          send_to(proc, FrameType::kAbort, abort_body.data());
        } catch (const QmpiError&) {
        }
        abort_run_locked(proc, reason);
        return;
      }
      if (!pending_cfg_.has_value()) {
        pending_cfg_ = cfg;
        begin_req_ids_.assign(static_cast<std::size_t>(nprocs_), 0);
        begin_addrs_.assign(static_cast<std::size_t>(nprocs_), PeerAddr{});
      } else if (!(cfg == *pending_cfg_)) {
        abort_run_locked(-1,
                         "QMPI run configuration differs across processes "
                         "(check that every process sees the same QMPI_* "
                         "environment)");
        return;
      }
      begin_req_ids_[static_cast<std::size_t>(proc)] = req_id;
      begin_addrs_[static_cast<std::size_t>(proc)] = std::move(addr);
      if (++begin_count_ < nprocs_) return;

      // Barrier complete: reset the backend, then go live before any
      // RUN_READY leaves, so early kPost traffic is routable. A reset
      // failure (e.g. a shard count the backend rejects) fails this run
      // for every process instead of killing the hub.
      if (services_.reset) {
        try {
          services_.reset(*pending_cfg_);
        } catch (const std::exception& e) {
          abort_run_locked(-1, std::string("cannot start run, backend "
                                           "reset failed: ") +
                                   e.what());
          return;
        }
      }
      active_cfg_ = *pending_cfg_;
      pending_cfg_.reset();
      begin_count_ = 0;
      hub_epoch_ = epoch;
      next_context_ = 1;  // fresh Universe semantics per run
      for (auto& failed : sim_failed_) failed.clear();  // fresh backend too
      run_active_ = true;
      for (int p = 0; p < nprocs_; ++p) {
        WireWriter ready;
        ready.u64(begin_req_ids_[static_cast<std::size_t>(p)]);
        // The brokered data plane: every process learns where every other
        // process accepts direct peer connections (port 0 = hub-route it).
        wire_detail::check_u32_count(begin_addrs_.size(), "peer address");
        ready.u32(static_cast<std::uint32_t>(begin_addrs_.size()));
        for (const auto& a : begin_addrs_) {
          ready.str(a.host);
          ready.u16(a.port);
        }
        try {
          send_to(p, FrameType::kRunReady, ready.data());
        } catch (const QmpiError& e) {
          abort_run_locked(p, std::string("cannot start run: ") + e.what());
          return;
        }
      }
      begin_addrs_.clear();
      return;
    }

    case FrameType::kRunEnd: {
      WireReader r(frame.body);
      const std::uint64_t req_id = r.u64();
      const std::uint64_t epoch = r.u64();
      const std::uint32_t n = r.u32();
      const qmpi::LockGuard lock(mu_);
      if (!run_active_ || epoch != hub_epoch_) return;  // aborted already
      if (end_count_ == 0) {  // first RUN_END of this barrier
        end_totals_.assign(n, 0);
        end_req_ids_.assign(static_cast<std::size_t>(nprocs_), 0);
      } else if (n != end_totals_.size()) {
        // Heterogeneous binaries (one process built with a different
        // resource-counter layout): summing would silently corrupt the
        // world totals, so fail the run loudly instead.
        abort_run_locked(-1,
                         "resource totals layout differs across processes "
                         "(are all ranks running the same binary?)");
        return;
      }
      for (std::uint32_t i = 0; i < n && i < end_totals_.size(); ++i) {
        end_totals_[i] += r.u64();
      }
      end_req_ids_[static_cast<std::size_t>(proc)] = req_id;
      if (++end_count_ < nprocs_) return;

      run_active_ = false;
      for (int p = 0; p < nprocs_; ++p) {
        WireWriter ack;
        ack.u64(end_req_ids_[static_cast<std::size_t>(p)]);
        wire_detail::check_u32_count(end_totals_.size(), "resource total");
        ack.u32(static_cast<std::uint32_t>(end_totals_.size()));
        for (const auto v : end_totals_) ack.u64(v);
        try {
          send_to(p, FrameType::kRunEndAck, ack.data());
        } catch (const QmpiError&) {
          // Peer died at the very end; its reader aborts the (now
          // finished) run, which is a no-op.
        }
      }
      end_count_ = 0;
      end_req_ids_.clear();
      end_totals_.clear();
      return;
    }

    case FrameType::kAbort: {
      WireReader r(frame.body);
      const std::uint64_t epoch = r.u64();
      const std::string reason = r.str();
      const qmpi::LockGuard lock(mu_);
      const std::uint64_t current =
          pending_cfg_.has_value() ? hub_epoch_ + 1 : hub_epoch_;
      if (epoch == current && (run_active_ || pending_cfg_.has_value() ||
                               end_count_ > 0)) {
        abort_run_locked(proc, reason);
      }
      return;
    }

    default:
      // Unknown or out-of-place frame: a protocol bug. Fail loudly.
      throw QmpiError("hub: unexpected frame type " +
                      std::to_string(static_cast<int>(frame.type)) +
                      " from process " + std::to_string(proc));
  }
}

// --------------------------------------------------------------- client ---

HubClient::HubClient(const std::string& host, std::uint16_t port, int proc_id,
                     int connect_attempts)
    : proc_id_(proc_id) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw QmpiError("QMPI_TCP_HOST=\"" + host +
                    "\" is not a valid IPv4 address");
  }

  std::string last_error;
  for (int attempt = 0; attempt < connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw QmpiError("cannot create socket: " + errno_text());
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    last_error = errno_text();
    ::close(fd_);
    fd_ = -1;
  }
  if (fd_ < 0) {
    throw QmpiError("cannot connect to QMPI hub at " + host + ":" +
                    std::to_string(port) + ": " + last_error +
                    " (is qmpirun running, and do QMPI_TCP_HOST/"
                    "QMPI_TCP_PORT match its listener?)");
  }
  set_cloexec(fd_);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Synchronous HELLO before the receiver thread exists: nothing else can
  // be in flight yet. Bounded by a receive timeout, mirroring the hub's
  // handshake guard: a listener that accepts but never answers (wrong
  // service on QMPI_TCP_PORT, wedged hub) must fail loud, not hang.
  timeval hello_timeout{};
  hello_timeout.tv_sec = 5;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &hello_timeout,
               sizeof(hello_timeout));
  WireWriter hello;
  hello.u32(kHelloMagic);
  hello.u16(kWireVersion);
  hello.u16(static_cast<std::uint16_t>(proc_id));
  write_frame(fd_, FrameType::kHello, hello.data());
  Frame ack;
  try {
    ack = read_frame(fd_);
  } catch (const QmpiError& e) {
    ::close(fd_);
    throw QmpiError("no HELLO_ACK from " + host + ":" +
                    std::to_string(port) +
                    " within 5s — is that really a qmpirun hub? (" +
                    e.what() + ")");
  }
  const timeval no_timeout{};  // handshake over; reads block again
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &no_timeout,
               sizeof(no_timeout));
  if (ack.type != FrameType::kHelloAck) {
    ::close(fd_);
    throw QmpiError("hub handshake failed: expected HELLO_ACK, got frame "
                    "type " +
                    std::to_string(static_cast<int>(ack.type)));
  }
  WireReader r(ack.body);
  nprocs_ = r.u16();
  if (proc_id_ >= nprocs_) {
    ::close(fd_);
    throw QmpiError("QMPI_PROC_ID=" + std::to_string(proc_id_) +
                    " out of range for a " + std::to_string(nprocs_) +
                    "-process job");
  }
  receiver_ = std::thread([this] { receiver_loop(); });
}

HubClient::~HubClient() {
  {
    const qmpi::LockGuard lock(mu_);
    fatal_ = true;
  }
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (receiver_.joinable()) receiver_.join();
  if (fd_ >= 0) ::close(fd_);
}

void HubClient::fail_locked(const std::string& reason, bool fatal) {
  run_dead_ = true;
  if (fatal) fatal_ = true;
  if (dead_reason_.empty()) dead_reason_ = reason;
  if (on_abort_) on_abort_(dead_reason_);
  cv_.notify_all();
}

void HubClient::receiver_loop() {
  try {
    while (true) {
      Frame frame = read_frame(fd_);
      qmpi::UniqueLock lock(mu_);
      switch (frame.type) {
        case FrameType::kDeliver: {
          WireReader r(frame.body);
          const std::uint64_t epoch = r.u64();
          // Drop anything not addressed to the run we are currently in:
          // a delivery that raced an abort at the hub carries the dead
          // run's epoch and must never reach the next run's mailboxes.
          if (epoch != epoch_ || run_dead_ || !deliver_) break;
          auto [dest, msg] = decode_routed_after_epoch(r);
          // Invoke the sink OUTSIDE mu_: in distributed mode the sink is
          // the sim plane, and the root's sequencer immediately
          // rebroadcasts through post_remote(), which takes mu_ again.
          // Staying on this thread keeps per-connection FIFO intact.
          const auto deliver = deliver_;
          lock.unlock();
          deliver(dest, std::move(msg));
          break;
        }
        case FrameType::kRunReady:
        case FrameType::kCtxId:
        case FrameType::kSimResult:
        case FrameType::kSimError:
        case FrameType::kSimFenceAck:
        case FrameType::kRunEndAck: {
          WireReader r(frame.body);
          const std::uint64_t req_id = r.u64();
          if (frame.type == FrameType::kSimError && req_id == 0) {
            // Deferred failure of a one-way sim_post batch. First error
            // wins (later ones are downstream of the same broken state);
            // it is rethrown from the next sim_post/sim_call.
            const std::string reason = r.str();
            if (sim_post_error_.empty()) sim_post_error_ = reason;
            break;
          }
          if (req_id != waiting_req_id_) break;  // stale reply; drop
          if (frame.type == FrameType::kRunEndAck) epoch_done_ = true;
          reply_ = std::move(frame);
          cv_.notify_all();
          break;
        }
        case FrameType::kAbort: {
          WireReader r(frame.body);
          const std::uint64_t epoch = r.u64();
          const std::string reason = r.str();
          if (epoch == epoch_ && !epoch_done_) {
            fail_locked(reason, /*fatal=*/false);
          }
          break;
        }
        default:
          throw QmpiError("unexpected frame type " +
                          std::to_string(static_cast<int>(frame.type)) +
                          " from hub");
      }
    }
  } catch (const std::exception& e) {
    const qmpi::LockGuard lock(mu_);
    if (!fatal_) {
      fail_locked(std::string("lost connection to QMPI hub: ") + e.what(),
                  /*fatal=*/true);
    } else {
      // Deliberate local close (destructor); wake any remaining waiter.
      cv_.notify_all();
    }
  }
}

void HubClient::check_alive_locked() {
  if (fatal_ || run_dead_) {
    // Secondary failure: the run is already dead; blocked callers must
    // unwind the same way mailbox waiters do so the harness can prefer the
    // root cause.
    throw ShutdownError();
  }
}

void HubClient::throw_sim_post_error_locked() {
  if (sim_post_error_.empty()) return;
  std::string reason;
  reason.swap(sim_post_error_);
  throw RemoteSimError(reason);
}

void HubClient::run_sim_flush() {
  std::function<void()> flush;
  {
    const qmpi::LockGuard lock(mu_);
    flush = sim_flush_;
  }
  // Invoked without any HubClient lock held: the hook calls back into
  // sim_post, which takes mu_ and wr_mu_ itself.
  if (flush) flush();
}

std::vector<std::byte> HubClient::request(FrameType type, FrameType expect,
                                          std::span<const std::byte> body) {
  const qmpi::LockGuard req_lock(req_mu_);
  std::uint64_t req_id = 0;
  {
    const qmpi::LockGuard lock(mu_);
    check_alive_locked();
    req_id = next_req_id_++;
    waiting_req_id_ = req_id;
    reply_.reset();
  }
  WireWriter w;
  w.u64(req_id);
  w.bytes(body);
  {
    const qmpi::LockGuard wlock(wr_mu_);
    write_frame(fd_, type, w.data());
  }
  qmpi::UniqueLock lock(mu_);
  while (!reply_.has_value() && !run_dead_ && !fatal_) cv_.wait(lock);
  waiting_req_id_ = 0;
  if (!reply_.has_value()) throw ShutdownError();
  Frame reply = std::move(*reply_);
  reply_.reset();
  if (reply.type == FrameType::kSimError) {
    WireReader r(reply.body);
    r.u64();  // req id
    throw RemoteSimError(r.str());
  }
  if (reply.type != expect) {
    throw QmpiError("hub protocol error: expected frame type " +
                    std::to_string(static_cast<int>(expect)) + ", got " +
                    std::to_string(static_cast<int>(reply.type)));
  }
  // Strip the request-id echo; callers see only the semantic body.
  WireReader r(reply.body);
  r.u64();
  const auto rest = r.rest();
  return std::vector<std::byte>(rest.begin(), rest.end());
}

void HubClient::begin_run(const RunConfig& cfg) {
  std::uint64_t epoch = 0;
  PeerAddr endpoint;
  {
    const qmpi::LockGuard lock(mu_);
    if (fatal_) {
      throw QmpiError("cannot start a run: " + dead_reason_);
    }
    epoch = ++epoch_;
    epoch_done_ = false;
    run_dead_ = false;
    dead_reason_.clear();
    // A deferred batch error from an aborted run must not poison this
    // one: the hub's backend is reset at the begin barrier.
    sim_post_error_.clear();
    // A stale table must not outlive the run that brokered it.
    peers_.clear();
    endpoint = endpoint_;
  }
  WireWriter w;
  w.u64(epoch);
  encode_run_config(w, cfg);
  w.str(endpoint.host);
  w.u16(endpoint.port);
  std::vector<std::byte> body;
  try {
    body = request(FrameType::kRunBegin, FrameType::kRunReady, w.data());
  } catch (const ShutdownError&) {
    // A begin-barrier failure is always primary (config mismatch, peer
    // death): nothing user-visible has started yet, so report the reason.
    throw QmpiError("cannot start a run: " + dead_reason());
  }
  // The brokered peer address table (one entry per process).
  WireReader r(body);
  std::vector<PeerAddr> peers;
  if (r.remaining() > 0) {
    const std::uint32_t n = r.u32();
    peers.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      PeerAddr a;
      a.host = r.str();
      a.port = r.u16();
      peers.push_back(std::move(a));
    }
  }
  const qmpi::LockGuard lock(mu_);
  peers_ = std::move(peers);
}

void HubClient::set_peer_endpoint(std::string host, std::uint16_t port) {
  const qmpi::LockGuard lock(mu_);
  endpoint_ = PeerAddr{std::move(host), port};
}

std::vector<PeerAddr> HubClient::peer_addresses() {
  const qmpi::LockGuard lock(mu_);
  return peers_;
}

std::uint64_t HubClient::run_epoch() {
  const qmpi::LockGuard lock(mu_);
  check_alive_locked();
  return epoch_;
}

bool HubClient::run_epoch_live(std::uint64_t epoch) {
  const qmpi::LockGuard lock(mu_);
  return epoch == epoch_ && !run_dead_ && !fatal_;
}

void HubClient::sim_fence() {
  // Put any buffered batches on the wire first, so "seq" covers them.
  run_sim_flush();
  const std::uint64_t target = batch_seq_.load(std::memory_order_acquire);
  if (target == batch_synced_.load(std::memory_order_acquire)) return;
  (void)request(FrameType::kSimFence, FrameType::kSimFenceAck, {});
  {
    // The FIFO hub->client stream delivered any req-id-0 batch error
    // before the fence ack; surface it now, exactly like sim_call does.
    const qmpi::LockGuard lock(mu_);
    throw_sim_post_error_locked();
  }
  // Monotonic max: a concurrent fence may already have advanced it.
  std::uint64_t cur = batch_synced_.load(std::memory_order_relaxed);
  while (cur < target &&
         !batch_synced_.compare_exchange_weak(cur, target,
                                              std::memory_order_release)) {
  }
}

std::vector<std::uint64_t> HubClient::end_run(
    std::span<const std::uint64_t> totals) {
  // Flush-before-barrier: buffered quantum ops must be on the wire (and
  // thus executed, by connection FIFO) before the run can complete.
  run_sim_flush();
  WireWriter w;
  {
    const qmpi::LockGuard lock(mu_);
    w.u64(epoch_);
  }
  wire_detail::check_u32_count(totals.size(), "resource total");
  w.u32(static_cast<std::uint32_t>(totals.size()));
  for (const auto v : totals) w.u64(v);
  std::vector<std::byte> body;
  try {
    body = request(FrameType::kRunEnd, FrameType::kRunEndAck, w.data());
  } catch (const ShutdownError&) {
    // A peer failed while we waited at the end barrier; surface the
    // job-level cause (peer death, config mismatch) instead of the
    // secondary shutdown.
    const std::string reason = dead_reason();
    throw QmpiError("QMPI job aborted" +
                    (reason.empty() ? std::string(" by a peer process")
                                    : ": " + reason));
  }
  WireReader r(body);
  const std::uint32_t n = r.u32();
  std::vector<std::uint64_t> sums(n);
  for (std::uint32_t i = 0; i < n; ++i) sums[i] = r.u64();
  return sums;
}

void HubClient::abort_run(const std::string& reason) {
  std::uint64_t epoch = 0;
  {
    const qmpi::LockGuard lock(mu_);
    if (fatal_ || run_dead_) return;  // already failed; first reason wins
    epoch = epoch_;
    fail_locked(reason, /*fatal=*/false);
  }
  WireWriter w;
  w.u64(epoch);
  w.str(reason);
  try {
    const qmpi::LockGuard wlock(wr_mu_);
    write_frame(fd_, FrameType::kAbort, w.data());
  } catch (const QmpiError&) {
    // Hub is gone too; local ranks are already unblocked.
  }
}

std::uint64_t HubClient::allocate_context() {
  const auto body =
      request(FrameType::kCtxAlloc, FrameType::kCtxId, {});
  WireReader r(body);
  return r.u64();
}

std::vector<std::byte> HubClient::sim_call(
    std::span<const std::byte> request_body) {
  {
    // An already-known batch failure is the root cause of whatever this
    // call would observe; throw it instead of issuing the request.
    const qmpi::LockGuard lock(mu_);
    throw_sim_post_error_locked();
  }
  auto reply = request(FrameType::kSim, FrameType::kSimResult, request_body);
  {
    // Both directions of the connection are FIFO, so an error frame for
    // any batch that executed before this request has been processed by
    // the receiver before our reply woke us: if the flag is set now, the
    // reply was computed on post-failure state and must not be returned.
    const qmpi::LockGuard lock(mu_);
    throw_sim_post_error_locked();
  }
  return reply;
}

void HubClient::sim_post(std::span<const std::byte> request) {
  std::uint64_t epoch = 0;
  {
    const qmpi::LockGuard lock(mu_);
    check_alive_locked();
    throw_sim_post_error_locked();
    epoch = epoch_;
  }
  WireWriter w;
  w.u64(epoch);
  w.bytes(request);
  const qmpi::LockGuard wlock(wr_mu_);
  // Number the batch under the write lock, before it hits the wire: wire
  // order and seq order then agree, which is what sim_fence()'s "ack
  // covers every batch <= target" argument rests on.
  batch_seq_.fetch_add(1, std::memory_order_release);
  write_frame(fd_, FrameType::kSimBatch, w.data());
}

void HubClient::post_remote(int dest_world_rank, const Message& msg) {
  // Flush buffered quantum ops onto the connection first: FIFO then
  // guarantees the receiving rank can never observe this message before
  // the hub has executed every op that preceded it on this process.
  run_sim_flush();
  std::uint64_t epoch = 0;
  {
    const qmpi::LockGuard lock(mu_);
    check_alive_locked();
    epoch = epoch_;
  }
  const auto body = encode_routed(epoch, dest_world_rank, msg);
  const qmpi::LockGuard wlock(wr_mu_);
  write_frame(fd_, FrameType::kPost, body);
}

void HubClient::set_sinks(
    std::function<void(int, Message)> deliver,
    std::function<void(const std::string&)> on_abort) {
  const qmpi::LockGuard lock(mu_);
  deliver_ = std::move(deliver);
  on_abort_ = std::move(on_abort);
}

void HubClient::set_sim_flush(std::function<void()> flush) {
  const qmpi::LockGuard lock(mu_);
  sim_flush_ = std::move(flush);
}

std::string HubClient::dead_reason() {
  const qmpi::LockGuard lock(mu_);
  return dead_reason_;
}

// ----------------------------------------------------------- peer mesh ---

PeerMesh::PeerMesh(HubClient& hub,
                   std::function<void(int dest, Message)> deliver,
                   const std::string& advertised_host)
    : hub_(&hub), deliver_(std::move(deliver)) {
  links_.reserve(static_cast<std::size_t>(hub.nprocs()));
  for (int p = 0; p < hub.nprocs(); ++p) {
    links_.push_back(std::make_unique<Link>());
  }

  // With the loopback default the listener stays loopback-bound; a real
  // (QMPI_P2P_HOST) advertisement means peers dial in from other hosts,
  // so the listener must accept on all interfaces. Ephemeral port always:
  // many rank processes share this host.
  const bool loopback_only =
      advertised_host.empty() || advertised_host == "127.0.0.1" ||
      advertised_host == "localhost";
  listen_fd_ = net::listen_tcp(/*port=*/0, hub.nprocs(), "peer mesh", port_,
                               loopback_only);
  acceptor_ = std::thread([this] { accept_loop(); });
}

PeerMesh::~PeerMesh() {
  {
    const qmpi::LockGuard lock(mu_);
    stopping_ = true;
    // shutdown(), never close(), while threads may still use the fds: a
    // closed descriptor number could be recycled by an unrelated socket
    // before the reader notices. close happens after the joins.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (const int fd : peer_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
  for (const int fd : peer_fds_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& link : links_) {
    if (link->fd >= 0) ::close(link->fd);
  }
}

void PeerMesh::break_listener_for_test() {
  const qmpi::LockGuard lock(mu_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void PeerMesh::break_links_for_test() {
  const qmpi::LockGuard lock(mu_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (const int fd : peer_fds_) ::shutdown(fd, SHUT_RDWR);
}

void PeerMesh::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (destructor or test hook)
    }
    set_cloexec(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // Same bounded-handshake discipline as the hub: a connection that
    // never identifies itself must not wedge the accept loop.
    timeval hello_timeout{};
    hello_timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &hello_timeout,
                 sizeof(hello_timeout));
    try {
      const Frame hello = read_frame(fd);
      WireReader r(hello.body);
      const std::uint32_t magic = r.u32();
      const std::uint16_t version = r.u16();
      if (hello.type != FrameType::kPeerHello || magic != kHelloMagic ||
          version != kWireVersion) {
        throw QmpiError("peer mesh: bad peer hello");
      }
      (void)r.u16();  // dialer's proc id (diagnostics only)
      (void)r.u64();  // dialer's epoch; each kPeerPost carries its own
    } catch (const QmpiError&) {
      ::close(fd);
      continue;
    }
    const timeval no_timeout{};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &no_timeout,
                 sizeof(no_timeout));

    const qmpi::LockGuard lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    peer_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { peer_reader(fd); });
  }
}

void PeerMesh::peer_reader(int fd) {
  try {
    while (true) {
      Frame frame = read_frame(fd);
      if (frame.type != FrameType::kPeerPost) {
        throw QmpiError("peer mesh: unexpected frame type " +
                        std::to_string(static_cast<int>(frame.type)));
      }
      WireReader r(frame.body);
      const std::uint64_t epoch = r.u64();
      auto [dest, msg] = decode_routed_after_epoch(r);
      // Receiver-side stale-epoch defense: frames stamped by a run that
      // is no longer this process's live run (aborted, finished, or
      // raced by an abort broadcast) are dropped, mirroring the kDeliver
      // check in HubClient::receiver_loop.
      if (!hub_->run_epoch_live(epoch)) continue;
      deliver_(dest, std::move(msg));
    }
  } catch (const std::exception&) {
    // Dialer closed (its process exited or its run died) or we are being
    // torn down. Peer death mid-run is detected and propagated by the
    // hub's connection tracking; nothing to do here.
  }
}

void PeerMesh::resolve_locked(Link& link, int dest_proc,
                              std::uint64_t epoch) {
  // Pessimistic default: anything short of a completed dial+hello makes
  // this pair hub-routed for the whole run. The route must never change
  // again — flipping to direct later could overtake messages already
  // queued at the hub.
  link.state = Link::State::kHubRouted;
  PeerAddr addr;
  const auto peers = hub_->peer_addresses();
  if (dest_proc >= 0 && dest_proc < static_cast<int>(peers.size())) {
    addr = peers[static_cast<std::size_t>(dest_proc)];
  }
  if (addr.port == 0 || addr.host.empty()) return;  // peer opted out
  // Bounded retry with backoff before the permanent hub fallback: a peer
  // that advertised a listener may still be momentarily unreachable (its
  // accept backlog full on a busy host, or a cross-host route still
  // converging). Three dials spaced 100/300 ms keep worst-case first-send
  // latency bounded while surviving transient refusals.
  int fd = -1;
  for (int attempt = 0; attempt < 3 && fd < 0; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(attempt == 1 ? 100 : 300));
    }
    fd = net::dial_tcp(addr.host, addr.port, /*timeout_ms=*/2000);
  }
  if (fd < 0) return;  // unreachable peer: permanent hub fallback
  WireWriter hello;
  hello.u32(kHelloMagic);
  hello.u16(kWireVersion);
  hello.u16(static_cast<std::uint16_t>(hub_->proc_id()));
  hello.u64(epoch);
  try {
    write_frame(fd, FrameType::kPeerHello, hello.data());
  } catch (const QmpiError&) {
    ::close(fd);
    return;
  }
  link.fd = fd;
  link.state = Link::State::kDirect;
}

bool PeerMesh::try_send(int dest_proc, int dest_world_rank,
                        const Message& msg) {
  // Stamp before locking the link: throws ShutdownError when the run is
  // already dead (the sender-side stale-epoch defense).
  const std::uint64_t epoch = hub_->run_epoch();
  Link& link = *links_[static_cast<std::size_t>(dest_proc)];
  const qmpi::LockGuard lock(link.mu);
  if (link.state == Link::State::kUnresolved) {
    resolve_locked(link, dest_proc, epoch);
  }
  if (link.state == Link::State::kHubRouted) return false;
  if (link.state == Link::State::kBroken) {
    throw PeerLinkError(hub_->proc_id(), dest_proc,
                        "an earlier send on this link already failed");
  }
  try {
    write_frame(link.fd, FrameType::kPeerPost,
                encode_routed(epoch, dest_world_rank, msg));
  } catch (const QmpiError& e) {
    link.state = Link::State::kBroken;
    throw PeerLinkError(hub_->proc_id(), dest_proc, e.what());
  }
  return true;
}

// ------------------------------------------------------------ transport ---

/// Data-plane channel toward one world rank: co-hosted destinations are a
/// mailbox push, cross-process ones go through the mesh (direct link with
/// permanent hub fallback) or straight to the hub when p2p is off.
class SocketTransport::RankChannel final : public Channel {
 public:
  RankChannel(SocketTransport& transport, int dest)
      : transport_(transport),
        dest_(dest),
        owner_(rank_owner(transport.num_ranks_, transport.hub_->nprocs(),
                          dest)) {}

  void send(Message msg) override {
    transport_.send_to_rank(dest_, owner_, std::move(msg));
  }

  bool direct() const override {
    return transport_.is_local(dest_) || transport_.mesh_ != nullptr;
  }

 private:
  SocketTransport& transport_;
  int dest_;
  int owner_;  ///< process hosting dest_
};

SocketTransport::SocketTransport(HubClient& hub, int num_ranks, bool p2p,
                                 const std::string& p2p_host)
    : hub_(&hub), num_ranks_(num_ranks) {
  local_ = rank_block(num_ranks, hub.nprocs(), hub.proc_id());
  boxes_.reserve(static_cast<std::size_t>(local_.count));
  for (int i = 0; i < local_.count; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
  hub_->set_sinks(
      [this](int dest, Message msg) {
        deliver_local(dest, std::move(msg));
      },
      [this](const std::string& reason) {
        run_sim_fail(reason);
        shutdown_local();
      });
  if (p2p && hub.nprocs() > 1) {
    // The mesh delivers through the same local sink as hub deliveries
    // (epoch checking already done by the mesh reader).
    mesh_ = std::make_unique<PeerMesh>(
        hub,
        [this](int dest, Message msg) {
          deliver_local(dest, std::move(msg));
        },
        p2p_host);
    hub_->set_peer_endpoint(p2p_host, mesh_->port());
  } else {
    // Advertise "no listener" so peers hub-route toward this process;
    // this also clears any endpoint a previous run's transport set.
    hub_->set_peer_endpoint("", 0);
  }
  channels_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    channels_.push_back(std::make_unique<RankChannel>(*this, r));
  }
}

SocketTransport::~SocketTransport() {
  // Join the mesh's reader threads before the mailboxes they deliver
  // into (and the sinks) go away.
  mesh_.reset();
  hub_->set_sinks(nullptr, nullptr);
}

Channel& SocketTransport::channel(int dest_world_rank) {
  return *channels_[static_cast<std::size_t>(dest_world_rank)];
}

void SocketTransport::send_to_rank(int dest_world_rank, int owner_proc,
                                   Message msg) {
  if (is_local(dest_world_rank)) {
    boxes_[static_cast<std::size_t>(dest_world_rank - local_.first)]->post(
        std::move(msg));
    return;
  }
  // Cross-process classical sends must not outrun the quantum ops that
  // precede them in program order. The distributed backend registers a
  // fence here that sequences its pending ops through the root before
  // the message leaves; same-process deliveries above need no fence
  // because they share the origin's FIFO control stream.
  run_sim_fence();
  if (mesh_ != nullptr) {
    // Restore the ops-before-message order hub routing gives for free:
    // any buffered quantum ops must be known executed before a message
    // that bypasses the hub can announce their effects to the receiver.
    hub_->sim_fence();
    try {
      if (mesh_->try_send(owner_proc, dest_world_rank, msg)) return;
    } catch (const PeerLinkError& e) {
      // A broken direct link fails the whole job (peers blocked on this
      // process must wake), then surfaces the named edge to the caller.
      fail(e.what());
      throw;
    }
  }
  hub_->post_remote(dest_world_rank, msg);
}

void SocketTransport::break_peer_listener_for_test() {
  if (mesh_) mesh_->break_listener_for_test();
}

void SocketTransport::break_peer_links_for_test() {
  if (mesh_) mesh_->break_links_for_test();
}

Mailbox& SocketTransport::mailbox(int world_rank) {
  if (!is_local(world_rank)) {
    throw QmpiError("rank " + std::to_string(world_rank) +
                    " is not hosted by this process (local block is [" +
                    std::to_string(local_.first) + ", " +
                    std::to_string(local_.first + local_.count) + "))");
  }
  return *boxes_[static_cast<std::size_t>(world_rank - local_.first)];
}

std::uint64_t SocketTransport::allocate_context() {
  return hub_->allocate_context();
}

void SocketTransport::shutdown_local() {
  for (auto& box : boxes_) box->shutdown();
}

void SocketTransport::fail(const std::string& reason) {
  // Report the root cause to the hub BEFORE any local teardown: waking
  // sibling rank threads first lets their secondary ShutdownErrors race
  // into abort_run() ahead of this reason, and first-abort-wins would
  // then pin the job-level message to the symptom instead of the cause.
  hub_->abort_run(reason);
  run_sim_fail(reason);
  shutdown_local();
}

void SocketTransport::deliver_local(int dest, Message msg) {
  if (msg.channel >= ChannelKind::kSimCtl) {
    // Sim-plane traffic never reaches a mailbox: it is addressed to the
    // process, not a rank, and the distributed backend consumes it on
    // whatever thread delivered it.
    std::function<void(Message)> sink;
    {
      const qmpi::LockGuard lock(sim_hooks_mu_);
      sink = sim_sink_;
    }
    if (sink) sink(std::move(msg));
    return;
  }
  if (is_local(dest)) {
    boxes_[static_cast<std::size_t>(dest - local_.first)]->post(
        std::move(msg));
  }
  // Non-local: a routing bug upstream; dropping is safe (the sender
  // will block and the job times out visibly rather than corrupting
  // another rank's stream).
}

void SocketTransport::post_sim(int dest_world_rank, Message msg) {
  if (is_local(dest_world_rank)) {
    deliver_local(dest_world_rank, std::move(msg));
    return;
  }
  // Never run_sim_fence() here: sim-plane posts ARE the fenced traffic,
  // and fencing would recurse.
  const int owner = rank_owner(num_ranks_, hub_->nprocs(), dest_world_rank);
  if (mesh_ != nullptr) {
    try {
      if (mesh_->try_send(owner, dest_world_rank, msg)) return;
    } catch (const PeerLinkError& e) {
      fail(e.what());
      throw;
    }
  }
  hub_->post_remote(dest_world_rank, msg);
}

void SocketTransport::set_sim_sink(std::function<void(Message)> sink) {
  const qmpi::LockGuard lock(sim_hooks_mu_);
  sim_sink_ = std::move(sink);
}

void SocketTransport::set_sim_fence(std::function<void()> fence) {
  const qmpi::LockGuard lock(sim_hooks_mu_);
  sim_fence_ = std::move(fence);
}

void SocketTransport::set_sim_fail(std::function<void(const std::string&)> on_fail) {
  const qmpi::LockGuard lock(sim_hooks_mu_);
  sim_fail_ = std::move(on_fail);
}

void SocketTransport::run_sim_fence() {
  std::function<void()> fence;
  {
    const qmpi::LockGuard lock(sim_hooks_mu_);
    fence = sim_fence_;
  }
  if (fence) fence();
}

void SocketTransport::run_sim_fail(const std::string& reason) {
  std::function<void(const std::string&)> on_fail;
  {
    const qmpi::LockGuard lock(sim_hooks_mu_);
    on_fail = sim_fail_;
  }
  if (on_fail) on_fail(reason);
}

}  // namespace qmpi::classical
