#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "classical/comm.hpp"

namespace qmpi::classical {

/// Handle for a nonblocking operation (MPI_Request equivalent).
///
/// The transport is eager (sends complete immediately), so isend requests
/// are born complete; irecv requests carry a deferred match that wait()/
/// test() drive. Requests are move-only RAII handles; destroying an
/// incomplete receive request abandons it (MPI_Request_free semantics).
///
/// A default-constructed or moved-from handle is *null* (the analogue of
/// MPI_REQUEST_NULL): it has no operation to drive, so test() returns
/// true and wait() returns immediately — exactly how MPI defines
/// MPI_Test/MPI_Wait on a null request — instead of invoking an empty
/// callback. Either call marks the handle complete (completion is
/// terminal, so poll loops over it terminate). message() on a null
/// request is the empty Message.
class Request {
 public:
  Request() = default;
  Request(Request&&) = default;
  Request& operator=(Request&&) = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// A request that is already complete (used for eager sends).
  static Request completed() {
    Request r;
    r.complete_ = true;
    return r;
  }

  /// A receive request: `poll` returns the message when one matches,
  /// `block` waits for it.
  static Request receive(std::function<std::optional<Message>()> poll,
                         std::function<Message()> block) {
    Request r;
    r.poll_ = std::move(poll);
    r.block_ = std::move(block);
    return r;
  }

  /// True when this handle drives no operation (default-constructed or
  /// moved-from); the MPI_REQUEST_NULL state.
  bool is_null() const { return !complete_ && !poll_ && !block_; }

  /// Returns true and captures the message if the operation has completed.
  /// On a null handle: true immediately (MPI_Test on MPI_REQUEST_NULL),
  /// and the handle becomes complete — completion is terminal, so a
  /// test-then-poll loop over it terminates.
  bool test() {
    if (complete_) return true;
    if (!poll_) {  // null handle: nothing to wait for
      complete_ = true;
      return true;
    }
    if (auto msg = poll_()) {
      message_ = std::move(*msg);
      complete_ = true;
      return true;
    }
    return false;
  }

  /// Blocks until completion. On a null handle: returns immediately and
  /// marks the handle complete (MPI_Wait on MPI_REQUEST_NULL).
  void wait() {
    if (complete_) return;
    if (!block_) {  // null handle: nothing to wait for
      complete_ = true;
      return;
    }
    message_ = block_();
    complete_ = true;
  }

  /// Message delivered by a completed receive (empty for sends).
  const Message& message() const { return message_; }

  bool is_complete() const { return complete_; }

 private:
  bool complete_ = false;
  Message message_;
  std::function<std::optional<Message>()> poll_;
  std::function<Message()> block_;
};

/// Posts a nonblocking typed send (eager: completes immediately).
template <typename T>
  requires std::is_trivially_copyable_v<T>
Request isend(Comm& comm, const T& value, int dest, int tag) {
  comm.send(value, dest, tag);
  return Request::completed();
}

/// Posts a nonblocking receive; call wait()/test() then recv_value<T>().
inline Request irecv(Comm& comm, int source, int tag) {
  return Request::receive(
      [&comm, source, tag]() -> std::optional<Message> {
        Status status;
        if (!comm.iprobe(source, tag, &status)) return std::nullopt;
        return comm.recv_message(status.source, status.tag);
      },
      [&comm, source, tag]() { return comm.recv_message(source, tag); });
}

/// Extracts the typed payload of a completed receive request.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T recv_value(const Request& request) {
  if (request.message().payload.size() != sizeof(T)) {
    throw TruncationError(sizeof(T), request.message().payload.size());
  }
  return from_bytes<T>(request.message().payload);
}

/// Waits for every request in the range (MPI_Waitall).
template <typename Range>
void wait_all(Range& requests) {
  for (auto& r : requests) r.wait();
}

}  // namespace qmpi::classical
