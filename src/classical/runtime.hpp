#pragma once

#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "classical/comm.hpp"
#include "classical/universe.hpp"

namespace qmpi::classical {

/// Threads-as-ranks job harness.
///
/// `Runtime::run(n, fn)` plays the role of `mpirun -np n`: it creates a
/// Universe, spawns one thread per rank, hands each a world Comm, joins all
/// threads, and rethrows the first rank failure (after shutting the universe
/// down so no peer deadlocks waiting for the dead rank).
class Runtime {
 public:
  using RankFn = std::function<void(Comm&)>;

  /// Runs `fn` on `world_size` rank threads; blocks until all finish.
  /// Rethrows the first exception thrown by any rank.
  static void run(int world_size, const RankFn& fn) {
    Universe universe(world_size);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world_size));
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(world_size));

    for (int r = 0; r < world_size; ++r) {
      threads.emplace_back([&universe, &fn, &errors, r]() {
        try {
          Comm comm = Comm::world(universe, r);
          fn(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          // Fail fast: wake every rank blocked on this one.
          universe.shutdown();
        }
      });
    }
    for (auto& t : threads) t.join();
    // Prefer the root-cause exception: when one rank fails, peers blocked
    // in receives observe a secondary ShutdownError — rethrowing that
    // would mask the original error.
    std::exception_ptr first;
    std::exception_ptr first_shutdown;
    for (auto& e : errors) {
      if (!e) continue;
      try {
        std::rethrow_exception(e);
      } catch (const ShutdownError&) {
        if (!first_shutdown) first_shutdown = e;
      } catch (...) {
        if (!first) first = e;
      }
    }
    if (first) std::rethrow_exception(first);
    if (first_shutdown) std::rethrow_exception(first_shutdown);
  }
};

}  // namespace qmpi::classical
