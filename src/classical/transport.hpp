#pragma once

/// \file transport.hpp
/// The pluggable classical-transport seam the Comm layer is written
/// against. See docs/ARCHITECTURE.md §2.


#include <cstdint>

#include "classical/mailbox.hpp"
#include "classical/message.hpp"

namespace qmpi::classical {

/// Pluggable message fabric connecting the ranks of one QMPI job.
///
/// A Transport owns (a) delivery of envelope-addressed messages to any rank
/// in the world and (b) the inbox of every rank that is *hosted locally*
/// (in this process). The Comm layer is written entirely against this
/// interface, so point-to-point matching, collectives, and communicator
/// algebra work identically over any implementation:
///
///   - Universe (universe.hpp): the in-memory implementation — every rank
///     is a thread of this process and post() is a mailbox push.
///   - SocketTransport (socket_transport.hpp): ranks live in separate OS
///     processes; post() frames the message onto a TCP connection to the
///     job's hub, which routes it to the process hosting the destination.
///
/// Selection is plumbed through the job harness via QMPI_TRANSPORT
/// (core/context.cpp); user code never names a concrete transport.
///
/// Contract (what Comm and Request rely on):
///   - post() is eager and non-blocking: it never waits for the receiver.
///     Distributed transports may bound one message's size (the TCP
///     transport rejects frames above wire.hpp's kMaxFrameBytes with a
///     QmpiError); split payloads that could exceed it.
///   - Per (source, destination) pair, messages arrive in post() order on
///     each (tag, channel, context) stream — MPI's non-overtaking rule.
///     The Mailbox enforces matching; the transport must not reorder.
///   - mailbox(r) is valid only for locally hosted ranks; Comm only ever
///     asks for the inbox of the rank it belongs to.
///   - allocate_context() returns globally fresh ids: no two calls anywhere
///     in the world may observe the same id (communicator isolation).
///   - shutdown() wakes every locally blocked rank with ShutdownError and,
///     for distributed transports, propagates the failure to all peer
///     processes so the whole job fails fast instead of deadlocking.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of ranks in the world this transport connects.
  virtual int world_size() const = 0;

  /// Delivers `msg` to the inbox of `dest_world_rank` (eager, non-blocking;
  /// the destination may be hosted by another process).
  virtual void post(int dest_world_rank, Message msg) = 0;

  /// The local inbox of `world_rank`. Only valid for ranks hosted in this
  /// process; implementations throw on a non-local rank.
  virtual Mailbox& mailbox(int world_rank) = 0;

  /// Allocates a communicator context id that is fresh across the whole
  /// world (thread-safe; distributed transports delegate to the hub).
  virtual std::uint64_t allocate_context() = 0;

  /// Fails the job fast: wakes local blocked ranks with ShutdownError and
  /// propagates the abort to remote peers where applicable.
  virtual void shutdown() = 0;

  /// Human-readable transport name ("inproc", "tcp") for diagnostics.
  virtual const char* name() const = 0;
};

}  // namespace qmpi::classical
