#pragma once

/// \file transport.hpp
/// The pluggable classical-transport seam the Comm layer is written
/// against, split into a control-plane surface (world shape, context ids,
/// run lifecycle) and a data-plane surface (per-destination Channels).
/// See docs/ARCHITECTURE.md §2 and the "Control plane vs. data plane"
/// section.


#include <cstdint>

#include "classical/mailbox.hpp"
#include "classical/message.hpp"

namespace qmpi::classical {

/// Data-plane endpoint: ordered eager delivery toward one fixed
/// destination world rank.
///
/// A Channel is the unit the collective algorithms are built from: a
/// one-way, reliable, non-overtaking lane from the calling process to one
/// rank. Implementations:
///
///   - Universe: a direct push into the destination rank's mailbox.
///   - SocketTransport: a push into a co-hosted rank's mailbox, a framed
///     write on a direct peer TCP connection (p2p mode), or a framed
///     write to the hub which forwards it (hub fallback / QMPI_P2P=off).
///
/// Contract (what Comm, Request and the collective algorithms rely on):
///   - send() is eager and non-blocking: it never waits for the receiver.
///     Distributed transports may bound one message's size (the TCP
///     transport rejects frames above wire.hpp's kMaxFrameBytes with a
///     QmpiError); split payloads that could exceed it.
///   - All sends on one Channel arrive in send() order on each
///     (tag, channel, context) stream — MPI's non-overtaking rule. A
///     transport must never split one (source, destination) pair's
///     traffic across paths with different ordering (the socket transport
///     therefore fixes each pair's route — direct or hub — at first use
///     and never changes it mid-run).
///   - A send on a dead job raises ShutdownError; a direct peer link that
///     breaks mid-run raises PeerLinkError naming the failing edge.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Delivers `msg` to this channel's destination rank (eager,
  /// non-blocking). The caller fills in source/tag/channel/context.
  virtual void send(Message msg) = 0;

  /// True when this channel reaches its destination without transiting a
  /// central relay (shared-memory mailbox or direct peer socket). Purely
  /// informational — semantics are identical either way.
  virtual bool direct() const = 0;
};

/// Control plane + channel factory connecting the ranks of one QMPI job.
///
/// A Transport owns (a) the control plane — the world's shape, globally
/// fresh communicator context ids, and fail-fast shutdown — and (b) the
/// data plane: one Channel per destination rank, plus the inbox of every
/// rank that is *hosted locally* (in this process). The Comm layer is
/// written entirely against this interface, so point-to-point matching,
/// collectives, and communicator algebra work identically over any
/// implementation:
///
///   - Universe (universe.hpp): the in-memory implementation — every rank
///     is a thread of this process and every channel is a mailbox push.
///   - SocketTransport (socket_transport.hpp): ranks live in separate OS
///     processes; channels write framed messages either on direct peer
///     TCP connections brokered by the hub at the run-begin barrier, or
///     to the hub itself (fallback), while barriers, run epochs, config
///     checks, aborts, and quantum ops always stay hub-routed.
///
/// Selection is plumbed through the job harness via QMPI_TRANSPORT
/// (core/context.cpp); user code never names a concrete transport.
///
/// Contract:
///   - channel(d) is valid for every world rank d and may be called
///     concurrently from different rank threads; the returned reference
///     stays valid for the transport's lifetime.
///   - mailbox(r) is valid only for locally hosted ranks; Comm only ever
///     asks for the inbox of the rank it belongs to.
///   - allocate_context() returns globally fresh ids: no two calls
///     anywhere in the world may observe the same id (communicator
///     isolation).
///   - shutdown() wakes every locally blocked rank with ShutdownError
///     and, for distributed transports, propagates the failure to all
///     peer processes so the whole job fails fast instead of deadlocking.
class Transport {
 public:
  virtual ~Transport() = default;

  // ------------------------------------------------------ control plane --

  /// Number of ranks in the world this transport connects.
  virtual int world_size() const = 0;

  /// Allocates a communicator context id that is fresh across the whole
  /// world (thread-safe; distributed transports delegate to the hub).
  virtual std::uint64_t allocate_context() = 0;

  /// Fails the job fast: wakes local blocked ranks with ShutdownError and
  /// propagates the abort to remote peers where applicable.
  virtual void shutdown() = 0;

  /// Human-readable transport name ("inproc", "tcp") for diagnostics.
  virtual const char* name() const = 0;

  // --------------------------------------------------------- data plane --

  /// The outgoing channel toward `dest_world_rank`. Implementations keep
  /// one channel per destination alive for the transport's lifetime.
  virtual Channel& channel(int dest_world_rank) = 0;

  /// The local inbox of `world_rank`. Only valid for ranks hosted in this
  /// process; implementations throw on a non-local rank.
  virtual Mailbox& mailbox(int world_rank) = 0;

  /// Capability query: true when cross-process rank pairs generally get
  /// direct peer links (the collective strategy layer selects ring /
  /// recursive-doubling schedules only when this holds; hub-routed
  /// transports keep the centralized schedules so QMPI_P2P=off is
  /// byte-identical to the pre-p2p behavior).
  virtual bool peer_to_peer() const = 0;
};

}  // namespace qmpi::classical
