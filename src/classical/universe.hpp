#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "classical/mailbox.hpp"
#include "classical/transport.hpp"

namespace qmpi::classical {

/// In-process Transport: the shared state of a threads-as-ranks "MPI job".
///
/// The Universe owns one mailbox per world rank and hands out fresh context
/// ids for communicator duplication/splitting. It is created once by the
/// Runtime and shared (by reference) with every rank thread; all members are
/// thread-safe. Because every rank is local, every data-plane channel is a
/// direct mailbox push — this is the zero-copy fast path the socket
/// transport falls back to for co-hosted ranks.
class Universe final : public Transport {
 public:
  explicit Universe(int world_size)
      : mailboxes_(static_cast<std::size_t>(world_size)) {
    for (auto& box : mailboxes_) box = std::make_unique<Mailbox>();
    channels_.reserve(mailboxes_.size());
    for (auto& box : mailboxes_) {
      channels_.push_back(std::make_unique<MailboxChannel>(*box));
    }
  }

  int world_size() const override {
    return static_cast<int>(mailboxes_.size());
  }

  /// Every rank is hosted here, so any world rank has a local inbox.
  Mailbox& mailbox(int world_rank) override {
    return *mailboxes_[static_cast<std::size_t>(world_rank)];
  }

  /// The data-plane lane toward `dest_world_rank`: a mailbox push.
  Channel& channel(int dest_world_rank) override {
    return *channels_[static_cast<std::size_t>(dest_world_rank)];
  }

  /// Every pair of ranks shares an address space: all channels are direct.
  bool peer_to_peer() const override { return true; }

  /// Allocates a fresh communicator context id. Ranks must call this
  /// collectively in the same order so they agree on the id; the Comm layer
  /// guarantees that by electing rank 0 to allocate and broadcasting.
  std::uint64_t allocate_context() override {
    return next_context_.fetch_add(1);
  }

  /// Wakes every rank blocked in a receive with ShutdownError. Called when a
  /// rank thread dies with an exception so the job fails fast instead of
  /// deadlocking.
  void shutdown() override {
    for (auto& box : mailboxes_) box->shutdown();
  }

  const char* name() const override { return "inproc"; }

 private:
  /// In-process channel: send() is a push into the destination's mailbox.
  class MailboxChannel final : public Channel {
   public:
    explicit MailboxChannel(Mailbox& box) : box_(box) {}
    void send(Message msg) override { box_.post(std::move(msg)); }
    bool direct() const override { return true; }

   private:
    Mailbox& box_;
  };

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<MailboxChannel>> channels_;
  std::atomic<std::uint64_t> next_context_{1};  // 0 = world context
};

}  // namespace qmpi::classical
