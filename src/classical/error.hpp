#pragma once

#include <stdexcept>
#include <string>

namespace qmpi {

/// Error raised on misuse of the QMPI API and on transport-level failures
/// that the user must act on (connect refusal, peer death, oversized
/// frames). Defined here — below the core layer — so the socket transport
/// can raise it directly; re-exported to users via core/context.hpp.
class QmpiError : public std::runtime_error {
 public:
  explicit QmpiError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace qmpi

namespace qmpi::classical {

/// Base class for all errors raised by the classical transport layer.
///
/// The transport mirrors MPI's error classes but reports problems through
/// exceptions (the idiomatic C++ equivalent of MPI_ERRORS_ARE_FATAL with a
/// recoverable twist: tests can catch and assert on them).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// An out-of-range rank was passed to a communication call.
class InvalidRankError : public TransportError {
 public:
  InvalidRankError(int rank, int size)
      : TransportError("invalid rank " + std::to_string(rank) +
                       " for communicator of size " + std::to_string(size)) {}
};

/// A typed receive found a message whose payload size does not match the
/// receiver's expectation (MPI_ERR_TRUNCATE equivalent).
class TruncationError : public TransportError {
 public:
  TruncationError(std::size_t expected, std::size_t actual)
      : TransportError("message truncation: expected " +
                       std::to_string(expected) + " bytes, got " +
                       std::to_string(actual)) {}
};

/// A collective was invoked with inconsistent arguments across ranks.
class CollectiveMismatchError : public TransportError {
 public:
  explicit CollectiveMismatchError(const std::string& what)
      : TransportError("collective argument mismatch: " + what) {}
};

/// The universe was shut down while a rank was blocked in a call.
class ShutdownError : public TransportError {
 public:
  ShutdownError() : TransportError("transport universe was shut down") {}
};

/// A direct peer data-plane link broke mid-run (the remote rank process
/// died or reset the connection). A typed QmpiError — it is a primary,
/// user-actionable failure, not a secondary shutdown — that names the
/// failing edge, so a collective that dies on one of its O(log n)
/// exchanges points at the broken pair, not just "the job failed".
class PeerLinkError : public QmpiError {
 public:
  PeerLinkError(int from_proc, int to_proc, const std::string& detail)
      : QmpiError("peer link proc " + std::to_string(from_proc) +
                  " -> proc " + std::to_string(to_proc) +
                  " broken: " + detail) {}
};

}  // namespace qmpi::classical
