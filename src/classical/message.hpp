#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace qmpi::classical {

/// Wildcard source rank, analogous to MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;
/// Wildcard tag, analogous to MPI_ANY_TAG.
inline constexpr int kAnyTag = -1;

/// Messages travel on one of several channels. User point-to-point traffic
/// and internal collective traffic are kept separate so that a user posting
/// a receive with kAnyTag can never steal a protocol message belonging to a
/// collective operation that is in flight on the same communicator.
///
/// The kSim* channels carry the distributed quantum backend's traffic
/// (QMPI_BACKEND=distributed). They never reach rank mailboxes: the
/// transport diverts any message with channel >= kSimCtl to the registered
/// sim sink, so classical matching (including wildcards) cannot observe
/// them. kSimCtl is the rank->root op/fence submission stream, kSimExec is
/// the root->everyone sequenced execution stream, and kSimData carries
/// amplitude-slab exchange frames between slice owners.
enum class ChannelKind : std::uint8_t {
  kPointToPoint = 0,
  kCollective = 1,
  kSimCtl = 2,
  kSimExec = 3,
  kSimData = 4,
};

/// A classical message. Payloads are opaque byte vectors; the typed helpers
/// in Comm serialize trivially copyable values in and out.
struct Message {
  int source = kAnySource;      ///< Sending rank within the communicator.
  int tag = kAnyTag;            ///< User tag (or internal collective tag).
  ChannelKind channel = ChannelKind::kPointToPoint;
  std::uint64_t context = 0;    ///< Communicator context id (dup/split safe).
  std::vector<std::byte> payload;
};

/// Envelope describing a delivered message, analogous to MPI_Status.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t byte_count = 0;
};

/// Serializes a trivially copyable value into a byte vector.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> to_bytes(const T& value) {
  std::vector<std::byte> bytes(sizeof(T));
  std::memcpy(bytes.data(), &value, sizeof(T));
  return bytes;
}

/// Serializes a contiguous range of trivially copyable values.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> to_bytes(std::span<const T> values) {
  std::vector<std::byte> bytes(values.size_bytes());
  if (!values.empty()) {
    std::memcpy(bytes.data(), values.data(), values.size_bytes());
  }
  return bytes;
}

/// Deserializes a trivially copyable value from a byte span.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T from_bytes(std::span<const std::byte> bytes) {
  T value{};
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

}  // namespace qmpi::classical
