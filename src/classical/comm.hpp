#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "classical/error.hpp"
#include "classical/message.hpp"
#include "classical/transport.hpp"

namespace qmpi::classical {

/// A communicator: an ordered group of ranks plus an isolated context.
///
/// Mirrors MPI_Comm semantics: point-to-point matching is scoped to the
/// context, collectives must be entered by all members in the same order,
/// and dup()/split() derive new, non-interfering communicators.
///
/// Each rank owns its own Comm instances (they are cheap handles over the
/// shared Transport); Comm itself is not shared across threads. Comm is
/// transport-agnostic: the same code drives the in-memory Universe and the
/// multi-process SocketTransport.
class Comm {
 public:
  /// Builds the world communicator for `world_rank` of `transport`.
  static Comm world(Transport& transport, int world_rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  std::uint64_t context() const { return context_; }

  /// True when the underlying transport delivers rank-to-rank messages over
  /// direct per-pair channels rather than a central relay. Collectives use
  /// this to pick between distributed (ring, recursive-doubling) and
  /// centralized (root-funnelled) schedules.
  bool peer_to_peer() const {
    return transport_ != nullptr && transport_->peer_to_peer();
  }

  // ---------------------------------------------------------------- p2p ---

  /// Sends raw bytes to `dest` with `tag` (eager, buffered; never blocks).
  void send_bytes(std::span<const std::byte> bytes, int dest, int tag);

  /// Receives a message from `source` (kAnySource allowed) with `tag`
  /// (kAnyTag allowed); blocks until one is available.
  Message recv_message(int source, int tag);

  /// Typed send of one trivially copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(const T& value, int dest, int tag) {
    const auto bytes = to_bytes(value);
    send_bytes(bytes, dest, tag);
  }

  /// Typed send of a contiguous buffer.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(std::span<const T> values, int dest, int tag) {
    const auto bytes = to_bytes(values);
    send_bytes(bytes, dest, tag);
  }

  /// Typed receive of one value; throws TruncationError on size mismatch.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv(int source, int tag, Status* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (msg.payload.size() != sizeof(T)) {
      throw TruncationError(sizeof(T), msg.payload.size());
    }
    if (status != nullptr) {
      *status = Status{msg.source, msg.tag, msg.payload.size()};
    }
    return from_bytes<T>(msg.payload);
  }

  /// Typed receive into a caller-provided buffer of exact element count.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv(std::span<T> out, int source, int tag, Status* status = nullptr) {
    Message msg = recv_message(source, tag);
    if (msg.payload.size() != out.size_bytes()) {
      throw TruncationError(out.size_bytes(), msg.payload.size());
    }
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    if (status != nullptr) {
      *status = Status{msg.source, msg.tag, msg.payload.size()};
    }
  }

  /// MPI_Iprobe equivalent on the point-to-point channel.
  bool iprobe(int source, int tag, Status* status = nullptr);

  // -------------------------------------------------------- collectives ---

  /// Synchronizes all ranks (dissemination barrier, O(log N) rounds).
  void barrier();

  /// Broadcasts `value` from `root` to all ranks (binomial tree).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T bcast(T value, int root);

  /// Broadcasts a buffer in place from `root`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void bcast(std::span<T> buffer, int root);

  /// Gathers one value per rank to `root`; result is ordered by rank and
  /// only meaningful at the root (empty elsewhere).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> gather(const T& value, int root);

  /// Gathers variable-length buffers to `root` (MPI_Gatherv equivalent).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<std::vector<T>> gatherv(std::span<const T> values, int root);

  /// Scatters one value per rank from `root` (values ignored elsewhere).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T scatter(std::span<const T> values, int root);

  /// All-gathers one value per rank to every rank. On a peer-to-peer
  /// transport this is a ring (N-1 neighbor exchanges, no rank hosts more
  /// than 2 messages per step); on a hub-routed transport it falls back to
  /// gather + bcast (fewest total messages through the single relay).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather(const T& value);

  /// Personalized all-to-all: element i of `values` goes to rank i.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> alltoall(std::span<const T> values);

  /// Reduces one value per rank to `root` with associative `op`
  /// (binomial-tree reduction). Result is meaningful only at the root.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T reduce(const T& value, Op op, int root);

  /// Reduction whose result is available on every rank. On a peer-to-peer
  /// transport with a power-of-two size this runs recursive doubling
  /// (log N rounds of pairwise exchange, no root bottleneck); otherwise it
  /// falls back to reduce-to-0 + bcast. Both paths fold operands in the
  /// same balanced ascending-rank association, so even non-commutative or
  /// floating-point ops produce bit-identical results across transports.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T allreduce(const T& value, Op op);

  /// Inclusive prefix reduction: rank i receives op(v_0, ..., v_i).
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T scan(const T& value, Op op);

  /// Exclusive prefix reduction: rank i receives op(v_0, ..., v_{i-1});
  /// rank 0 receives `identity`. This is the classical MPI_Exscan the paper
  /// uses to compute cat-state fix-ups (Section 7.1).
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T exscan(const T& value, Op op, T identity);

  // ----------------------------------------------- communicator algebra ---

  /// Duplicates this communicator with a fresh context (collective).
  Comm dup();

  /// Splits into disjoint sub-communicators by `color`, ordered by
  /// (key, rank) (collective). Negative color yields an invalid Comm that
  /// must not be used (mirrors MPI_COMM_NULL from MPI_UNDEFINED).
  Comm split(int color, int key);

  /// True for default-constructed / MPI_COMM_NULL-like handles.
  bool is_null() const { return transport_ == nullptr; }

  Comm() = default;

 private:
  Comm(Transport* transport, std::uint64_t context, std::vector<int> members,
       int rank)
      : transport_(transport),
        context_(context),
        members_(std::move(members)),
        rank_(rank) {}

  void check_rank(int rank) const {
    if (rank < 0 || rank >= size()) throw InvalidRankError(rank, size());
  }

  int world_rank_of(int comm_rank) const {
    return members_[static_cast<std::size_t>(comm_rank)];
  }

  /// Posts an internal collective-channel message to `dest`.
  void coll_send_bytes(std::span<const std::byte> bytes, int dest, int tag);
  /// Blocking receive on the collective channel (no wildcards).
  Message coll_recv_message(int source, int tag);

  template <typename T>
  void coll_send(const T& value, int dest, int tag) {
    const auto bytes = to_bytes(value);
    coll_send_bytes(bytes, dest, tag);
  }
  template <typename T>
  void coll_send(std::span<const T> values, int dest, int tag) {
    const auto bytes = to_bytes(values);
    coll_send_bytes(bytes, dest, tag);
  }
  template <typename T>
  T coll_recv(int source, int tag) {
    Message msg = coll_recv_message(source, tag);
    if (msg.payload.size() != sizeof(T)) {
      throw TruncationError(sizeof(T), msg.payload.size());
    }
    return from_bytes<T>(msg.payload);
  }
  template <typename T>
  std::vector<T> coll_recv_vector(int source, int tag) {
    Message msg = coll_recv_message(source, tag);
    if (msg.payload.size() % sizeof(T) != 0) {
      throw TruncationError(sizeof(T), msg.payload.size());
    }
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    return out;
  }

  /// Returns the base tag for the next collective on this communicator. All
  /// ranks enter collectives in the same order (an MPI correctness
  /// requirement), so a per-handle counter stays consistent across ranks.
  /// Each collective owns a block of kTagsPerCollective tags so multi-round
  /// algorithms (scan, barrier) can use distinct per-round tags without
  /// colliding with the next collective's traffic.
  static constexpr int kTagsPerCollective = 64;
  int next_collective_tag() {
    const int t = collective_seq_;
    collective_seq_ += kTagsPerCollective;
    return t;
  }

  Transport* transport_ = nullptr;
  std::uint64_t context_ = 0;
  std::vector<int> members_;  ///< comm rank -> world rank
  int rank_ = -1;
  int collective_seq_ = 0;
};

// ------------------------------------------------------------------------
// Template implementations
// ------------------------------------------------------------------------

template <typename T>
  requires std::is_trivially_copyable_v<T>
T Comm::bcast(T value, int root) {
  check_rank(root);
  const int tag = next_collective_tag();
  // Binomial tree rooted at `root`: relative rank r receives from
  // r - 2^k (highest set bit) and forwards to r + 2^k for growing k.
  const int n = size();
  const int rel = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = (rel - mask + root) % n;
      value = coll_recv<T>(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n && (rel & (mask - 1)) == 0 && !(rel & mask)) {
      const int dst = (rel + mask + root) % n;
      coll_send(value, dst, tag);
    }
    mask >>= 1;
  }
  return value;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void Comm::bcast(std::span<T> buffer, int root) {
  check_rank(root);
  const int tag = next_collective_tag();
  const int n = size();
  const int rel = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = (rel - mask + root) % n;
      Message msg = coll_recv_message(src, tag);
      if (msg.payload.size() != buffer.size_bytes()) {
        throw TruncationError(buffer.size_bytes(), msg.payload.size());
      }
      if (!buffer.empty()) {
        std::memcpy(buffer.data(), msg.payload.data(), msg.payload.size());
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n && (rel & (mask - 1)) == 0 && !(rel & mask)) {
      const int dst = (rel + mask + root) % n;
      coll_send(std::span<const T>(buffer), dst, tag);
    }
    mask >>= 1;
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> Comm::gather(const T& value, int root) {
  check_rank(root);
  const int tag = next_collective_tag();
  if (rank() == root) {
    std::vector<T> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank())] = value;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = coll_recv<T>(r, tag);
    }
    return out;
  }
  coll_send(value, root, tag);
  return {};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::vector<T>> Comm::gatherv(std::span<const T> values,
                                          int root) {
  check_rank(root);
  const int tag = next_collective_tag();
  if (rank() == root) {
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank())].assign(values.begin(), values.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = coll_recv_vector<T>(r, tag);
    }
    return out;
  }
  coll_send(values, root, tag);
  return {};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T Comm::scatter(std::span<const T> values, int root) {
  check_rank(root);
  const int tag = next_collective_tag();
  if (rank() == root) {
    if (values.size() != static_cast<std::size_t>(size())) {
      throw CollectiveMismatchError("scatter root buffer size != comm size");
    }
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      coll_send(values[static_cast<std::size_t>(r)], r, tag);
    }
    return values[static_cast<std::size_t>(root)];
  }
  return coll_recv<T>(root, tag);
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> Comm::allgather(const T& value) {
  const int n = size();
  if (!transport_->peer_to_peer() || n <= 2) {
    // Hub-routed transport: every message crosses the relay anyway, so the
    // two binomial phases (fewest total messages) win. At n <= 2 the ring
    // degenerates to the same single exchange.
    auto gathered = gather(value, 0);
    if (rank() != 0) gathered.resize(static_cast<std::size_t>(n));
    bcast(std::span<T>(gathered), 0);
    return gathered;
  }
  // Ring allgather over direct links: step k sends block (rank - k) to the
  // right neighbor and receives block (rank - k - 1) from the left one, so
  // each block travels one hop per step and no rank ever carries more than
  // two messages at once. Sends are eager (never block), which makes the
  // ring deadlock-free; a single tag suffices because per-source FIFO
  // delivery keeps the N-1 messages from `prev` in step order.
  const int tag = next_collective_tag();
  const int next = (rank() + 1) % n;
  const int prev = (rank() - 1 + n) % n;
  std::vector<T> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(rank())] = value;
  for (int k = 0; k < n - 1; ++k) {
    const auto send_idx = static_cast<std::size_t>((rank() - k + n) % n);
    const auto recv_idx = static_cast<std::size_t>((rank() - k - 1 + n) % n);
    coll_send(out[send_idx], next, tag);
    out[recv_idx] = coll_recv<T>(prev, tag);
  }
  return out;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> Comm::alltoall(std::span<const T> values) {
  if (values.size() != static_cast<std::size_t>(size())) {
    throw CollectiveMismatchError("alltoall buffer size != comm size");
  }
  const int tag = next_collective_tag();
  std::vector<T> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank())] =
      values[static_cast<std::size_t>(rank())];
  // Pairwise exchange: in round k, exchange with rank ^ k when that is a
  // valid member (power-of-two friendly; falls back to send-all otherwise).
  for (int r = 0; r < size(); ++r) {
    if (r == rank()) continue;
    coll_send(values[static_cast<std::size_t>(r)], r, tag);
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank()) continue;
    out[static_cast<std::size_t>(r)] = coll_recv<T>(r, tag);
  }
  return out;
}

template <typename T, typename Op>
  requires std::is_trivially_copyable_v<T>
T Comm::reduce(const T& value, Op op, int root) {
  check_rank(root);
  const int tag = next_collective_tag();
  // Binomial tree: children fold into parents. Combine order is fixed
  // (child op parent) so non-commutative-but-associative ops still see a
  // deterministic order.
  const int n = size();
  const int rel = (rank() - root + n) % n;
  T acc = value;
  int mask = 1;
  while (mask < n) {
    if ((rel & mask) == 0) {
      const int child = rel + mask;
      if (child < n) {
        const int src = (child + root) % n;
        T other = coll_recv<T>(src, tag);
        acc = op(acc, other);
      }
    } else {
      const int dst = (rel - mask + root) % n;
      coll_send(acc, dst, tag);
      break;
    }
    mask <<= 1;
  }
  return rank() == root ? acc : T{};
}

template <typename T, typename Op>
  requires std::is_trivially_copyable_v<T>
T Comm::allreduce(const T& value, Op op) {
  const int n = size();
  if (!transport_->peer_to_peer() || n == 1) {
    T result = reduce(value, op, 0);
    return bcast(result, 0);
  }
  // Recursive doubling: round k exchanges partial results with the rank
  // whose k-th address bit differs, halving the remaining distance each
  // round. Both sides fold lower-rank-group op higher-rank-group; for
  // power-of-two worlds that is exactly the balanced association the
  // binomial reduce above uses, so the fallback path and this path agree
  // bit-for-bit even for floating-point ops.
  //
  // Other sizes use the classic remainder handling: with n = pof2 + rem,
  // the first 2*rem ranks pre-fold pairwise (odd rank into the even rank
  // below it) so exactly pof2 survivors run the doubling rounds, and the
  // folded-out odd ranks receive the total afterwards. The fold order is
  // fixed for a given world size, so results are reproducible run to run;
  // it differs from the binomial fallback's association, so non-pow2
  // floating-point reductions are only comparable within one routing mode.
  const int tag = next_collective_tag();
  const int pof2 = static_cast<int>(std::bit_floor(static_cast<unsigned>(n)));
  const int rem = n - pof2;
  T acc = value;
  int me = -1;  // this rank's index among the pof2 doubling participants
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      T other = coll_recv<T>(rank() + 1, tag);
      acc = op(acc, other);
      me = rank() / 2;
    }  // odd: hand the value down, sit out the doubling rounds
    else {
      coll_send(acc, rank() - 1, tag);
    }
  } else {
    me = rank() - rem;
  }
  if (me >= 0) {
    // Participant index -> comm rank: the survivors of the pre-fold are
    // the even ranks below 2*rem followed by everything from 2*rem up.
    const auto participant_rank = [rem](int q) {
      return q < rem ? 2 * q : q + rem;
    };
    int round = 1;
    for (int dist = 1; dist < pof2; dist <<= 1, ++round) {
      const int peer = me ^ dist;
      const int partner = participant_rank(peer);
      coll_send(acc, partner, tag + round);
      T other = coll_recv<T>(partner, tag + round);
      acc = me < peer ? op(acc, other) : op(other, acc);
    }
  }
  if (rank() < 2 * rem) {
    if (rank() % 2 == 0) {
      coll_send(acc, rank() + 1, tag + kTagsPerCollective - 1);
    } else {
      acc = coll_recv<T>(rank() - 1, tag + kTagsPerCollective - 1);
    }
  }
  return acc;
}

template <typename T, typename Op>
  requires std::is_trivially_copyable_v<T>
T Comm::scan(const T& value, Op op) {
  // Hillis-Steele style log-round inclusive scan (Sanders & Träff's
  // doubling schedule): in round k, receive from rank - 2^k and fold.
  const int tag = next_collective_tag();
  T acc = value;
  int round = 0;
  for (int dist = 1; dist < size(); dist <<= 1, ++round) {
    T incoming{};
    const bool recv_from_left = rank() - dist >= 0;
    const bool send_to_right = rank() + dist < size();
    // Sends never block (eager transport), so post send before recv.
    if (send_to_right) coll_send(acc, rank() + dist, tag + round);
    if (recv_from_left) {
      incoming = coll_recv<T>(rank() - dist, tag + round);
      acc = op(incoming, acc);
    }
  }
  return acc;
}

template <typename T, typename Op>
  requires std::is_trivially_copyable_v<T>
T Comm::exscan(const T& value, Op op, T identity) {
  // Inclusive scan shifted right by one rank.
  const int tag = next_collective_tag();
  T inclusive = scan(value, op);
  if (rank() + 1 < size()) coll_send(inclusive, rank() + 1, tag);
  if (rank() == 0) return identity;
  return coll_recv<T>(rank() - 1, tag);
}

}  // namespace qmpi::classical
