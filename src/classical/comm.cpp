#include "classical/comm.hpp"

#include <algorithm>
#include <tuple>

namespace qmpi::classical {

Comm Comm::world(Transport& transport, int world_rank) {
  std::vector<int> members(static_cast<std::size_t>(transport.world_size()));
  std::iota(members.begin(), members.end(), 0);
  return Comm(&transport, /*context=*/0, std::move(members), world_rank);
}

void Comm::send_bytes(std::span<const std::byte> bytes, int dest, int tag) {
  check_rank(dest);
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.channel = ChannelKind::kPointToPoint;
  msg.context = context_;
  msg.payload.assign(bytes.begin(), bytes.end());
  transport_->channel(world_rank_of(dest)).send(std::move(msg));
}

Message Comm::recv_message(int source, int tag) {
  if (source != kAnySource) check_rank(source);
  return transport_->mailbox(world_rank_of(rank_))
      .match(source, tag, ChannelKind::kPointToPoint, context_);
}

bool Comm::iprobe(int source, int tag, Status* status) {
  if (source != kAnySource) check_rank(source);
  return transport_->mailbox(world_rank_of(rank_))
      .probe(source, tag, ChannelKind::kPointToPoint, context_, status);
}

void Comm::coll_send_bytes(std::span<const std::byte> bytes, int dest,
                           int tag) {
  check_rank(dest);
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.channel = ChannelKind::kCollective;
  msg.context = context_;
  msg.payload.assign(bytes.begin(), bytes.end());
  transport_->channel(world_rank_of(dest)).send(std::move(msg));
}

Message Comm::coll_recv_message(int source, int tag) {
  return transport_->mailbox(world_rank_of(rank_))
      .match(source, tag, ChannelKind::kCollective, context_);
}

void Comm::barrier() {
  // Dissemination barrier: round k signals rank + 2^k and waits for the
  // signal from rank - 2^k; after ceil(log2 N) rounds all ranks have
  // transitively heard from everyone.
  const int tag = next_collective_tag();
  const int n = size();
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (rank() + dist) % n;
    const int from = (rank() - dist + n) % n;
    coll_send(std::uint8_t{1}, to, tag + round);
    (void)coll_recv<std::uint8_t>(from, tag + round);
  }
}

Comm Comm::dup() {
  // Rank 0 allocates the fresh context and broadcasts it; this keeps the
  // universe counter the single source of truth without inter-rank races.
  std::uint64_t ctx = 0;
  if (rank_ == 0) ctx = transport_->allocate_context();
  ctx = bcast(ctx, 0);
  Comm out(transport_, ctx, members_, rank_);
  return out;
}

Comm Comm::split(int color, int key) {
  struct Entry {
    int color;
    int key;
    int rank;
  };
  // Gather (color, key) at rank 0, compute the group layout once, then
  // scatter each rank's (context, new_rank, group...) assignment back.
  auto entries = gather(Entry{color, key, rank_}, 0);

  std::vector<std::uint64_t> contexts(static_cast<std::size_t>(size()), 0);
  std::vector<int> new_ranks(static_cast<std::size_t>(size()), -1);
  // Flattened per-rank member lists, delivered via gatherv-style messages.
  std::vector<std::vector<int>> groups(static_cast<std::size_t>(size()));
  if (rank_ == 0) {
    // Sort members of each color by (key, rank) to define new rank order.
    std::vector<int> colors;
    for (const auto& e : entries) {
      if (e.color >= 0 &&
          std::find(colors.begin(), colors.end(), e.color) == colors.end()) {
        colors.push_back(e.color);
      }
    }
    for (int c : colors) {
      std::vector<Entry> group;
      for (const auto& e : entries) {
        if (e.color == c) group.push_back(e);
      }
      std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
        return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
      });
      const std::uint64_t ctx = transport_->allocate_context();
      std::vector<int> world_members;
      world_members.reserve(group.size());
      for (const auto& e : group) {
        world_members.push_back(world_rank_of(e.rank));
      }
      for (std::size_t i = 0; i < group.size(); ++i) {
        const auto r = static_cast<std::size_t>(group[i].rank);
        contexts[r] = ctx;
        new_ranks[r] = static_cast<int>(i);
        groups[r] = world_members;
      }
    }
  }

  const int tag = next_collective_tag();
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      const auto idx = static_cast<std::size_t>(r);
      coll_send(contexts[idx], r, tag);
      coll_send(new_ranks[idx], r, tag);
      coll_send(std::span<const int>(groups[idx]), r, tag);
    }
    if (color < 0) return Comm();
    return Comm(transport_, contexts[0], groups[0], new_ranks[0]);
  }
  const auto ctx = coll_recv<std::uint64_t>(0, tag);
  const auto new_rank = coll_recv<int>(0, tag);
  auto group = coll_recv_vector<int>(0, tag);
  if (color < 0) return Comm();
  return Comm(transport_, ctx, std::move(group), new_rank);
}

}  // namespace qmpi::classical
