#include "classical/mailbox.hpp"

namespace qmpi::classical {

void Mailbox::post(Message msg) {
  {
    const qmpi::LockGuard lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::matches(const Message& msg, int source, int tag, ChannelKind channel,
                      std::uint64_t context) const {
  if (msg.channel != channel || msg.context != context) return false;
  if (source != kAnySource && msg.source != source) return false;
  if (tag != kAnyTag && msg.tag != tag) return false;
  return true;
}

std::optional<Message> Mailbox::extract_locked(int source, int tag,
                                               ChannelKind channel,
                                               std::uint64_t context) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag, channel, context)) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

Message Mailbox::match(int source, int tag, ChannelKind channel,
                       std::uint64_t context) {
  qmpi::UniqueLock lock(mutex_);
  for (;;) {
    if (shutdown_) throw ShutdownError();
    if (auto msg = extract_locked(source, tag, channel, context)) {
      return std::move(*msg);
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_match(int source, int tag, ChannelKind channel,
                                          std::uint64_t context) {
  const qmpi::LockGuard lock(mutex_);
  if (shutdown_) throw ShutdownError();
  return extract_locked(source, tag, channel, context);
}

bool Mailbox::probe(int source, int tag, ChannelKind channel,
                    std::uint64_t context, Status* status) {
  const qmpi::LockGuard lock(mutex_);
  if (shutdown_) throw ShutdownError();
  for (const auto& msg : queue_) {
    if (matches(msg, source, tag, channel, context)) {
      if (status != nullptr) {
        *status = Status{msg.source, msg.tag, msg.payload.size()};
      }
      return true;
    }
  }
  return false;
}

void Mailbox::shutdown() {
  {
    const qmpi::LockGuard lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

}  // namespace qmpi::classical
