#pragma once

/// \file socket_transport.hpp
/// TCP transport for multi-process QMPI jobs: hub, per-process client,
/// and the Transport implementation. See docs/ARCHITECTURE.md §3.


#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "classical/mailbox.hpp"
#include "classical/message.hpp"
#include "classical/transport.hpp"
#include "classical/wire.hpp"
#include "core/sync.hpp"

namespace qmpi::classical {

/// TCP transport for QMPI ranks running as separate OS processes.
///
/// Topology: a star control plane with an optional peer-to-peer data
/// plane. One *hub* (hosted by the `qmpirun` launcher) accepts one TCP
/// connection per rank process and provides the control-plane services
/// over length-prefixed frames (wire.hpp):
///
///   1. Job control: RUN_BEGIN/RUN_READY and RUN_END/RUN_END_ACK barriers
///      bracket every qmpi::run() call so all processes agree on the run
///      configuration, the backend is reset exactly once per run, and
///      resource totals are world-summed; kAbort propagates any rank
///      failure so no process deadlocks on a dead peer. The RUN_BEGIN
///      barrier doubles as the p2p broker: each process advertises its
///      peer-listener address in its kRunBegin frame and receives the
///      full per-process address table back in the kRunReady reply.
///   2. Quantum forwarding: kSim frames carry opaque simulator commands to
///      the hub's backend — the paper's §6 design ("all ranks forward
///      quantum operations to rank 0") made literal across processes.
///   3. Classical routing fallback: a kPost frame names a destination
///      world rank; the hub forwards it as kDeliver to the process
///      hosting that rank. Per-connection FIFO plus single-threaded
///      routing preserves the MPI non-overtaking order Comm relies on.
///
/// The data plane (PeerMesh, enabled unless QMPI_P2P=off): cross-process
/// classical messages travel on direct rank-process <-> rank-process TCP
/// connections, dialed lazily on first send using the brokered address
/// table and framed with the same epoch-tagged kPost body layout
/// (kPeerPost). Each (sender process, receiver process) pair's route —
/// direct or hub — is fixed at first use and never changes mid-run, so
/// MPI non-overtaking order is preserved per pair; an unreachable peer
/// (or one that advertised no listener) permanently falls back to hub
/// routing for the run. Quantum ops, barriers, aborts and context
/// allocation always stay on the hub connection.
///
/// Rank placement: the requested `num_ranks` are split into contiguous
/// blocks over the `nprocs` connected processes (rank_block()); a process
/// runs one thread per hosted rank. With nprocs == num_ranks this is one
/// process per rank; with fewer processes the job oversubscribes like
/// `mpirun --oversubscribe`; processes beyond num_ranks host zero ranks
/// but still participate in the run barriers.
///
/// All transport failures (connect refusal, peer death mid-message,
/// oversized frames, configuration mismatch) surface as QmpiError with the
/// failing endpoint in the message.

/// Configuration one run() call must agree on across every process. The
/// classical layer treats `backend` as an opaque token; the core layer maps
/// it to sim::BackendKind.
struct RunConfig {
  std::uint32_t num_ranks = 0;
  std::uint64_t seed = 0;
  std::uint8_t backend = 0;
  std::uint32_t num_shards = 1;
  std::uint32_t sim_threads = 1;
  bool operator==(const RunConfig&) const = default;
};

/// The contiguous block of world ranks hosted by one process.
struct RankBlock {
  int first = 0;
  int count = 0;
};

/// Where one rank process accepts direct peer connections. Port 0 means
/// "no listener": the process opted out of the p2p data plane
/// (QMPI_P2P=off) and every message toward it must go through the hub.
struct PeerAddr {
  std::string host;
  std::uint16_t port = 0;
};

/// Deterministic rank placement shared by hub and clients: contiguous
/// blocks, earlier processes take the remainder.
RankBlock rank_block(int num_ranks, int nprocs, int proc);
/// Inverse mapping: which process hosts `world_rank`.
int rank_owner(int num_ranks, int nprocs, int world_rank);

// ------------------------------------------------------- socket helpers ---

namespace net {

/// Creates a TCP listener on `port` (0 = ephemeral), writes the bound port
/// back to `bound_port`, and returns the listening fd (CLOEXEC,
/// SO_REUSEADDR). `loopback_only` binds 127.0.0.1; otherwise all
/// interfaces. Throws QmpiError prefixed with `role` ("hub", "qmpid", ...)
/// on failure. Shared by the hub, the peer mesh, and the job service so
/// every listener in the system has identical bind semantics.
int listen_tcp(std::uint16_t port, int backlog, const char* role,
               std::uint16_t& bound_port, bool loopback_only = true);

/// Bounded dial: non-blocking connect with a poll() deadline, so a dead or
/// wedged listener costs at most `timeout_ms` instead of a minutes-long
/// blocking connect. Returns a blocking, TCP_NODELAY, CLOEXEC fd, or -1 on
/// any failure (callers decide whether that is fatal or a fallback).
int dial_tcp(const std::string& host, std::uint16_t port, int timeout_ms);

}  // namespace net

// ---------------------------------------------------------------- hub ---

/// The routing/quantum server at the center of a multi-process job.
/// Binds and listens in the constructor (so clients may connect as soon as
/// the launcher forks them); serve() accepts `nprocs` connections and runs
/// until every process has disconnected.
class Hub {
 public:
  struct Services {
    /// Executes one opaque quantum request (sim_wire.hpp encodes these) and
    /// returns the reply body; exceptions are marshalled to the caller as
    /// remote simulator errors. Null: quantum ops are rejected.
    std::function<std::vector<std::byte>(std::span<const std::byte>)> sim;
    /// Resets backend state for a new run with the given configuration.
    std::function<void(const RunConfig&)> reset;
  };

  /// Throws QmpiError when the port cannot be bound. Port 0 picks an
  /// ephemeral port; read it back with port().
  Hub(int nprocs, std::uint16_t port, Services services);
  ~Hub();

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  std::uint16_t port() const { return port_; }

  /// How many of the expected processes have completed their HELLO
  /// handshake. The launcher compares this with its child count to detect
  /// a child that died before ever joining a partially formed job (the
  /// begin barrier could otherwise wait forever).
  int connected_count();

  /// Accepts connections and serves until all processes disconnect (or
  /// stop() is called). Run this on the launcher's main thread or a
  /// dedicated thread in tests.
  void serve();

  /// Force-closes the listener and all connections; serve() returns.
  void stop();

 private:
  struct Conn {
    /// Serializes frame writes to this process and guards fd/open.
    /// Ordered after Hub::mu_: the abort/stop paths hold mu_ while taking
    /// a connection's write_mu, never the reverse.
    qmpi::Mutex write_mu{"Hub::Conn::write_mu"};
    int fd QMPI_GUARDED_BY(write_mu) = -1;
    bool open QMPI_GUARDED_BY(write_mu) = false;  ///< connection live
    std::thread reader;
    /// Proc id was ever taken; reconnects rejected. Guarded by Hub::mu_
    /// (a nested struct cannot spell that in an attribute).
    bool claimed = false;
  };

  void reader_loop(int proc);
  void handle_frame(int proc, Frame frame);
  void send_to(int proc, FrameType type, std::span<const std::byte> body);
  void abort_run_locked(int origin_proc, const std::string& reason)
      QMPI_REQUIRES(mu_);
  void on_disconnect(int proc);

  int nprocs_;
  Services services_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  /// Serializes quantum operations only (kept separate from mu_ so a long
  /// state-vector sweep never blocks classical routing). Leaf lock: no
  /// other lock is ever taken while holding it.
  qmpi::Mutex sim_mu_{"Hub::sim_mu"};
  qmpi::Mutex mu_{"Hub::mu"};
  qmpi::CondVar done_cv_;
  /// Sized once in the constructor, elements never move; each Conn
  /// carries its own write_mu.
  std::vector<std::unique_ptr<Conn>> conns_;
  int connected_ QMPI_GUARDED_BY(mu_) = 0;
  int alive_ QMPI_GUARDED_BY(mu_) = 0;
  bool stopping_ QMPI_GUARDED_BY(mu_) = false;

  // Run lifecycle (guarded by mu_). hub_epoch_ counts completed RUN_BEGIN
  // barriers; a run is live between the RUN_READY broadcast and either the
  // RUN_END_ACK broadcast or an abort.
  std::uint64_t hub_epoch_ QMPI_GUARDED_BY(mu_) = 0;
  bool run_active_ QMPI_GUARDED_BY(mu_) = false;
  /// Last epoch whose abort broadcast ran.
  std::uint64_t aborted_epoch_ QMPI_GUARDED_BY(mu_) = 0;
  /// Processes that left the job for good.
  int departed_ QMPI_GUARDED_BY(mu_) = 0;
  RunConfig active_cfg_ QMPI_GUARDED_BY(mu_);
  /// Per-process broken-op-stream marker: once a batched op from process
  /// p fails, later sim frames from p in the same run are refused with
  /// this reason (batches dropped, requests answered with kSimError), so
  /// "ops after the failing one never execute" holds across batch
  /// boundaries exactly as the RPC path's throw stops the op stream.
  /// Cleared when a run goes live or aborts.
  std::vector<std::string> sim_failed_ QMPI_GUARDED_BY(mu_);
  std::optional<RunConfig> pending_cfg_ QMPI_GUARDED_BY(mu_);
  int begin_count_ QMPI_GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> begin_req_ids_ QMPI_GUARDED_BY(mu_);
  /// Peer-listener addresses collected from this run's kRunBegin frames
  /// and echoed back to every process in its kRunReady (the broker step).
  std::vector<PeerAddr> begin_addrs_ QMPI_GUARDED_BY(mu_);
  int end_count_ QMPI_GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> end_req_ids_ QMPI_GUARDED_BY(mu_);
  std::vector<std::uint64_t> end_totals_ QMPI_GUARDED_BY(mu_);
  std::uint64_t next_context_ QMPI_GUARDED_BY(mu_) = 1;
};

// --------------------------------------------------------------- client ---

/// One process's connection to the hub. Created once per process and
/// reused across run() calls; the receiver thread dispatches deliveries
/// into the active SocketTransport and request replies to the single
/// outstanding requester (requests are serialized and correlated by id, so
/// a reply delayed across an abort can never satisfy the wrong caller).
class HubClient {
 public:
  /// Connects and performs the HELLO handshake. Throws QmpiError when the
  /// hub is unreachable (after `connect_attempts` x 100 ms retries).
  HubClient(const std::string& host, std::uint16_t port, int proc_id,
            int connect_attempts = 50);
  ~HubClient();

  HubClient(const HubClient&) = delete;
  HubClient& operator=(const HubClient&) = delete;

  int nprocs() const { return nprocs_; }
  int proc_id() const { return proc_id_; }

  /// RUN_BEGIN barrier: blocks until every process has begun this run with
  /// an identical config and the hub has reset the backend. Advertises
  /// this process's peer endpoint (set_peer_endpoint) and stores the
  /// brokered address table the hub returns (peer_addresses).
  void begin_run(const RunConfig& cfg);

  /// Registers the peer-listener address advertised by the next
  /// begin_run(). Port 0 (the default) advertises "no listener" and makes
  /// every peer hub-route its traffic toward this process.
  void set_peer_endpoint(std::string host, std::uint16_t port);

  /// The per-process peer address table brokered by the last successful
  /// begin_run() (index = proc id). Empty before the first run.
  std::vector<PeerAddr> peer_addresses();

  /// The epoch of the run this client is currently in. Direct peer frames
  /// carry it so stale traffic from an aborted run is droppable on the
  /// receiving side. Throws ShutdownError when the run is dead, so a
  /// sender can never stamp (and ship) a frame for a run that already
  /// failed — the sender-side half of the stale-epoch defense.
  std::uint64_t run_epoch();

  /// True while `epoch` names the live, un-failed run this client is in.
  /// The receiving side of the stale-epoch defense: peer readers drop any
  /// frame for which this is false, mirroring the kDeliver check.
  bool run_epoch_live(std::uint64_t epoch);

  /// Quantum-op fence: flushes any buffered one-way op batches (see
  /// set_sim_flush) and, if batches went out since the last fence,
  /// round-trips the hub so they are known executed. A direct peer send
  /// must fence first: on the hub path, connection FIFO guarantees the
  /// receiver observes prior quantum ops as executed, and the fence
  /// restores exactly that guarantee when the classical message bypasses
  /// the hub. No-op (two atomic loads) when nothing is pending.
  void sim_fence();

  /// RUN_END barrier: contributes this process's resource totals, returns
  /// the world-wide element-wise sum (identical in every process). Throws
  /// QmpiError naming the cause when the run was aborted (peer death,
  /// config mismatch) instead of completing.
  std::vector<std::uint64_t> end_run(std::span<const std::uint64_t> totals);

  /// Fails the current run everywhere: peers' blocked receives wake with
  /// ShutdownError. Idempotent; no-op when no run is live.
  void abort_run(const std::string& reason);

  /// Globally fresh communicator context id (hub-allocated).
  std::uint64_t allocate_context();

  /// Round-trips one opaque quantum request to the hub backend. Throws
  /// RemoteSimError when the remote simulator rejected the op — or when an
  /// earlier sim_post()ed batch failed (the deferred error is surfaced at
  /// the next round trip, before and after which it is checked, so a
  /// reply computed on post-failure state is never returned). Throws
  /// QmpiError when the transport failed.
  std::vector<std::byte> sim_call(std::span<const std::byte> request);

  /// Ships one opaque quantum request to the hub backend as a one-way,
  /// epoch-tagged kSimBatch frame: no req-id correlation, no reply, no
  /// blocking. The hub executes it in per-connection FIFO order (i.e.
  /// before any classical frame written after it); a failure comes back
  /// asynchronously as a req-id-0 kSimError and is rethrown as
  /// RemoteSimError from the next sim_post/sim_call on this client.
  void sim_post(std::span<const std::byte> request);

  /// Registers a hook invoked right before a kPost or kRunEnd frame is
  /// written, so a quantum-op pipeline can drain its buffer onto the
  /// connection first — per-connection FIFO then guarantees every peer
  /// that receives the classical message observes those ops as already
  /// executed. Pass nullptr to unregister. The hook may call sim_post()
  /// but must not post classical messages (it would recurse).
  void set_sim_flush(std::function<void()> flush);

  /// Posts a classical message toward `dest_world_rank` (one-way, eager).
  /// Invokes the sim-flush hook first (see set_sim_flush).
  void post_remote(int dest_world_rank, const Message& msg);

  /// Registers the delivery sink for incoming kDeliver frames and the
  /// abort hook (both invoked on the receiver thread). Pass nulls to
  /// unregister between runs.
  void set_sinks(std::function<void(int dest, Message)> deliver,
                 std::function<void(const std::string& reason)> on_abort);

  /// Why the current run is dead, or empty. The run harness uses this to
  /// turn secondary ShutdownErrors into one actionable QmpiError.
  std::string dead_reason();

 private:
  void receiver_loop();
  void fail_locked(const std::string& reason, bool fatal)
      QMPI_REQUIRES(mu_);
  std::vector<std::byte> request(FrameType type, FrameType expect,
                                 std::span<const std::byte> body);
  void check_alive_locked() QMPI_REQUIRES(mu_);
  void throw_sim_post_error_locked() QMPI_REQUIRES(mu_);
  void run_sim_flush();

  int fd_ = -1;
  int proc_id_ = 0;
  int nprocs_ = 0;
  std::thread receiver_;

  /// Serializes request/reply users; held while taking wr_mu_ (to write
  /// the request frame) and mu_ (to park on the reply), hence the top of
  /// this client's ordering.
  qmpi::Mutex req_mu_ QMPI_ACQUIRED_BEFORE(wr_mu_, mu_){"HubClient::req_mu"};
  qmpi::Mutex wr_mu_{"HubClient::wr_mu"};  ///< serializes frame writes
  qmpi::Mutex mu_{"HubClient::mu"};        ///< guards everything below
  qmpi::CondVar cv_;
  std::uint64_t next_req_id_ QMPI_GUARDED_BY(mu_) = 1;
  /// 0 = nobody waiting.
  std::uint64_t waiting_req_id_ QMPI_GUARDED_BY(mu_) = 0;
  std::optional<Frame> reply_ QMPI_GUARDED_BY(mu_);
  std::uint64_t epoch_ QMPI_GUARDED_BY(mu_) = 0;
  bool epoch_done_ QMPI_GUARDED_BY(mu_) = true;
  /// Current run failed (cleared by begin_run).
  bool run_dead_ QMPI_GUARDED_BY(mu_) = false;
  /// Connection gone for good.
  bool fatal_ QMPI_GUARDED_BY(mu_) = false;
  std::string dead_reason_ QMPI_GUARDED_BY(mu_);
  /// Deferred failure of a one-way sim batch.
  std::string sim_post_error_ QMPI_GUARDED_BY(mu_);
  std::function<void(int, Message)> deliver_ QMPI_GUARDED_BY(mu_);
  std::function<void(const std::string&)> on_abort_ QMPI_GUARDED_BY(mu_);
  std::function<void()> sim_flush_ QMPI_GUARDED_BY(mu_);
  /// Advertised by the next begin_run.
  PeerAddr endpoint_ QMPI_GUARDED_BY(mu_);
  /// Brokered table from the last begin_run.
  std::vector<PeerAddr> peers_ QMPI_GUARDED_BY(mu_);
  /// One-way batches written (seq) vs. known executed by the hub
  /// (synced); seq is incremented under wr_mu_ immediately before each
  /// kSimBatch write so wire order and numbering agree, which is what
  /// lets sim_fence() trust "ack received => every batch <= target ran".
  std::atomic<std::uint64_t> batch_seq_{0};
  std::atomic<std::uint64_t> batch_synced_{0};
};

/// Remote simulator rejected an operation (the hub-side Backend threw).
/// The core layer rethrows this as sim::SimulatorError so error handling
/// is identical in-process and across processes.
class RemoteSimError : public TransportError {
 public:
  explicit RemoteSimError(const std::string& what) : TransportError(what) {}
};

// ----------------------------------------------------------- peer mesh ---

/// The direct data plane of one rank process: a loopback listener that
/// accepts kPeerHello/kPeerPost streams from peer processes, plus lazily
/// dialed outgoing links to each peer (one simplex connection per
/// direction, so two simultaneous first-sends can never race a shared
/// socket). Created per run by SocketTransport when p2p is enabled; the
/// constructor registers the listener address with the HubClient so the
/// run-begin barrier can broker it to every peer.
///
/// Route stability: an outgoing link resolves exactly once — to kDirect
/// if the dial succeeds, to kHubRouted (permanently, for this run) if
/// the peer advertised no listener or refused the connection. A kDirect
/// link that later breaks becomes kBroken and every further send on it
/// raises PeerLinkError naming the edge; it never silently degrades to
/// hub routing, which could reorder messages behind ones already sent
/// directly.
class PeerMesh {
 public:
  /// Opens the listener and starts the accept thread. `deliver` receives
  /// decoded, epoch-checked messages on mesh reader threads (same
  /// contract as HubClient's delivery sink). `advertised_host` is the
  /// address peers will be told to dial (QMPI_P2P_HOST): for the loopback
  /// default the listener binds loopback only; any other value binds all
  /// interfaces so out-of-host peers can actually reach it.
  PeerMesh(HubClient& hub, std::function<void(int dest, Message)> deliver,
           const std::string& advertised_host = "127.0.0.1");
  ~PeerMesh();

  PeerMesh(const PeerMesh&) = delete;
  PeerMesh& operator=(const PeerMesh&) = delete;

  std::uint16_t port() const { return port_; }

  /// Ships `msg` toward the process hosting `dest_world_rank` over the
  /// direct link, dialing it first if this is the pair's first send.
  /// Returns false when the pair is (permanently) hub-routed. Throws
  /// PeerLinkError when an established link broke, and ShutdownError when
  /// the run is already dead.
  bool try_send(int dest_proc, int dest_world_rank, const Message& msg);

  /// Test hooks: make this process refuse new peer connections, or
  /// additionally sever already-accepted ones (simulating a peer whose
  /// data plane died while its hub connection lives on).
  void break_listener_for_test();
  void break_links_for_test();

 private:
  struct Link {
    /// Serializes dial + frame writes to this peer.
    qmpi::Mutex mu{"PeerMesh::Link::mu"};
    enum class State { kUnresolved, kDirect, kHubRouted, kBroken };
    State state QMPI_GUARDED_BY(mu) = State::kUnresolved;
    int fd QMPI_GUARDED_BY(mu) = -1;
  };

  void resolve_locked(Link& link, int dest_proc, std::uint64_t epoch)
      QMPI_REQUIRES(link.mu);
  void accept_loop();
  void peer_reader(int fd);

  HubClient* hub_;
  std::function<void(int, Message)> deliver_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Link>> links_;  ///< outgoing, per proc id

  /// Guards the accepted-connection bookkeeping below.
  qmpi::Mutex mu_{"PeerMesh::mu"};
  /// Accepted (incoming) connections.
  std::vector<int> peer_fds_ QMPI_GUARDED_BY(mu_);
  std::vector<std::thread> readers_ QMPI_GUARDED_BY(mu_);
  bool stopping_ QMPI_GUARDED_BY(mu_) = false;
};

// ------------------------------------------------------------ transport ---

/// Transport implementation over a HubClient: world_size() is the number
/// of *ranks* in the run (not processes); locally hosted ranks get real
/// mailboxes, co-hosted destinations short-circuit to a mailbox push, and
/// cross-process channels use the PeerMesh's direct links with the hub as
/// fallback (or exclusively the hub when constructed with p2p off).
/// Construct before HubClient::begin_run() so no delivery can race
/// registration and so the peer listener's address is advertised in the
/// begin barrier; destroy after end_run() returns (the RUN_END_ACK
/// guarantees no further deliveries are in flight).
class SocketTransport final : public Transport {
 public:
  /// `p2p` enables the direct data plane (QMPI_P2P; default on). With it
  /// off this transport advertises no listener and routes every
  /// cross-process message through the hub — byte-identical to the
  /// pre-p2p wire behavior. `p2p_host` is the address advertised to peers
  /// for this process's mesh listener (QMPI_P2P_HOST; loopback default).
  SocketTransport(HubClient& hub, int num_ranks, bool p2p = true,
                  const std::string& p2p_host = "127.0.0.1");
  ~SocketTransport() override;

  int world_size() const override { return num_ranks_; }
  Channel& channel(int dest_world_rank) override;
  Mailbox& mailbox(int world_rank) override;
  std::uint64_t allocate_context() override;
  void shutdown() override { fail("a local rank failed"); }
  const char* name() const override { return "tcp"; }
  bool peer_to_peer() const override { return mesh_ != nullptr; }

  /// The world ranks this process hosts.
  RankBlock local_ranks() const { return local_; }

  /// shutdown() with a reason that peers will see in their QmpiError.
  void fail(const std::string& reason);

  /// Ships a sim-channel message (channel >= ChannelKind::kSimCtl) toward
  /// the process hosting `dest_world_rank`: self-delivery invokes the sim
  /// sink inline, cross-process uses the mesh link (hub fallback, same
  /// route permanence as classical traffic). Unlike send_to_rank this
  /// never invokes the sim fence hook — sim traffic is what the fence
  /// orders, so fencing it would recurse. Throws ShutdownError when the
  /// run is dead.
  void post_sim(int dest_world_rank, Message msg);

  /// Registers the sink that receives every delivered message whose
  /// channel is >= ChannelKind::kSimCtl (invoked on receiver threads, or
  /// inline for self-sends). Such messages never reach rank mailboxes.
  /// Pass nullptr to unregister; with no sink registered sim-channel
  /// deliveries are dropped.
  void set_sim_sink(std::function<void(Message)> sink);

  /// Registers a hook invoked right before any cross-process classical
  /// send leaves this process, restoring ops-before-message order for the
  /// distributed backend (its op stream bypasses both hub and mesh FIFO
  /// toward the destination). Pass nullptr to unregister.
  void set_sim_fence(std::function<void()> fence);

  /// Registers a hook invoked (with the reason) when the run dies —
  /// locally via fail()/shutdown() or remotely via an abort broadcast —
  /// so blocked sim waiters wake with a typed error instead of hanging.
  void set_sim_fail(std::function<void(const std::string&)> on_fail);

  /// Test hooks (no-ops when p2p is off): see PeerMesh.
  void break_peer_listener_for_test();
  void break_peer_links_for_test();

 private:
  class RankChannel;

  bool is_local(int world_rank) const {
    return world_rank >= local_.first &&
           world_rank < local_.first + local_.count;
  }
  void send_to_rank(int dest_world_rank, int owner_proc, Message msg);
  void deliver_local(int dest_world_rank, Message msg);
  void run_sim_fence();
  void run_sim_fail(const std::string& reason);
  void shutdown_local();

  HubClient* hub_;
  int num_ranks_;
  RankBlock local_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::unique_ptr<PeerMesh> mesh_;  ///< null when p2p is off
  std::vector<std::unique_ptr<RankChannel>> channels_;

  /// Guards the three sim hooks (set once per run by the distributed
  /// backend, read on sender and receiver threads). Leaf lock: hooks are
  /// copied out under it and invoked with no lock held.
  qmpi::Mutex sim_hooks_mu_{"SocketTransport::sim_hooks_mu"};
  std::function<void(Message)> sim_sink_ QMPI_GUARDED_BY(sim_hooks_mu_);
  std::function<void()> sim_fence_ QMPI_GUARDED_BY(sim_hooks_mu_);
  std::function<void(const std::string&)> sim_fail_
      QMPI_GUARDED_BY(sim_hooks_mu_);
};

}  // namespace qmpi::classical
