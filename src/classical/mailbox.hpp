#pragma once

#include <deque>
#include <optional>

#include "classical/error.hpp"
#include "classical/message.hpp"
#include "core/sync.hpp"

namespace qmpi::classical {

/// Per-rank inbox with MPI matching semantics.
///
/// Messages from a given (source, tag, channel, context) arrive in FIFO order
/// (non-overtaking, as required by the MPI standard); matching supports
/// kAnySource / kAnyTag wildcards on the point-to-point channel. The mailbox
/// is the only synchronization point between rank threads, so it carries the
/// universe shutdown flag as well: a rank blocked in match() is woken with a
/// ShutdownError when the universe is torn down (e.g. because a peer threw).
class Mailbox {
 public:
  /// Deposits a message and wakes any matching waiter.
  void post(Message msg);

  /// Blocks until a message matching (source, tag, channel, context) is
  /// available and removes it from the inbox. Wildcards are honoured only on
  /// the point-to-point channel; collective protocol traffic always names its
  /// peer explicitly.
  Message match(int source, int tag, ChannelKind channel, std::uint64_t context);

  /// Non-blocking variant of match(); returns std::nullopt when no message
  /// matches right now.
  std::optional<Message> try_match(int source, int tag, ChannelKind channel,
                                   std::uint64_t context);

  /// Returns true when a matching message is queued (MPI_Iprobe equivalent).
  bool probe(int source, int tag, ChannelKind channel, std::uint64_t context,
             Status* status = nullptr);

  /// Wakes all waiters with ShutdownError; subsequent calls also throw.
  void shutdown();

 private:
  bool matches(const Message& msg, int source, int tag, ChannelKind channel,
               std::uint64_t context) const;
  /// Scans the queue under the lock; extracts and returns the first match.
  std::optional<Message> extract_locked(int source, int tag, ChannelKind channel,
                                        std::uint64_t context)
      QMPI_REQUIRES(mutex_);

  qmpi::Mutex mutex_{"Mailbox::mutex"};
  qmpi::CondVar cv_;
  std::deque<Message> queue_ QMPI_GUARDED_BY(mutex_);
  bool shutdown_ QMPI_GUARDED_BY(mutex_) = false;
};

}  // namespace qmpi::classical
