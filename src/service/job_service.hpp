#pragma once

/// \file job_service.hpp
/// The multi-tenant job service behind qmpid: one resident process hosts
/// many concurrent quantum sessions, each with its own Backend (own seeded
/// RNG, own qubit namespace, own epoch), admitted against a shared memory
/// budget and fair-scheduled onto a shared executor pool.
///
/// Layering: protocol constants live in service/protocol.hpp, the frame
/// grammar in classical/wire.hpp, and op execution is delegated to
/// core/sim_wire.hpp's apply_sim_request — the service adds tenancy
/// (admission, isolation, fairness, teardown) around the existing
/// single-tenant execution path rather than re-encoding any op.
/// See docs/ARCHITECTURE.md §9.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "classical/wire.hpp"
#include "core/sync.hpp"
#include "service/protocol.hpp"
#include "sim/backend.hpp"
#include "sim/circuit_cache.hpp"

namespace qmpi::service {

/// Service-wide knobs. Defaults are deliberately small-machine-safe;
/// from_env() overlays the QMPI_* environment contract used by qmpid.
struct ServiceConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (tests).
  std::uint16_t port = 0;

  /// Concurrent-session cap (QMPI_MAX_SESSIONS). Opens beyond it queue
  /// FIFO — slot exhaustion is a wait, not a failure.
  std::size_t max_sessions = 8;

  /// Total amplitude memory across all resident sessions, in bytes
  /// (QMPI_MEM_BUDGET). A session with max_qubits = n reserves exactly
  /// 2^n amplitudes (16 bytes each) for its lifetime; an open whose
  /// reservation can never fit is rejected with AdmissionError, one that
  /// merely doesn't fit *now* queues until memory frees.
  std::uint64_t mem_budget_bytes = 1ull << 30;

  /// Entry cap of the shared compiled-cluster cache (QMPI_CIRCUIT_CACHE);
  /// 0 disables caching. All sessions share one cache: compilation is a
  /// pure function of circuit content, so a hit from another tenant's
  /// identical cluster is always a correct replay.
  std::size_t circuit_cache_entries = sim::kDefaultCircuitCacheEntries;

  /// Executor threads draining session command queues round-robin;
  /// 0 = one per hardware thread (capped at 8).
  unsigned executors = 0;

  /// Reads QMPI_MAX_SESSIONS / QMPI_MEM_BUDGET / QMPI_CIRCUIT_CACHE /
  /// QMPI_SERVICE_EXECUTORS over the defaults above. Malformed values
  /// throw classical::QmpiError naming the variable.
  static ServiceConfig from_env();
};

/// Monotonic counters for tests, the qmpid status line, and the bench.
struct ServiceStats {
  std::uint64_t admitted = 0;         ///< sessions accepted
  std::uint64_t rejected = 0;         ///< opens refused (admission+protocol)
  std::uint64_t queued_admissions = 0;///< opens that had to wait for capacity
  std::size_t active_sessions = 0;    ///< currently resident sessions
  std::uint64_t reserved_amps = 0;    ///< amplitudes reserved right now
  std::uint64_t forged_dropped = 0;   ///< frames with a foreign (session,
                                      ///< epoch) stamp, dropped on arrival
  std::uint64_t ops_executed = 0;     ///< quantum ops run across all sessions
  std::uint64_t cache_hits = 0;       ///< shared cluster-cache counters
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

/// The resident job service. start() binds the port and spawns the accept
/// loop plus the executor pool; stop() (or the destructor) tears every
/// session down and joins all threads. One connection == one session:
/// admission happens at kSvcOpen, and the connection's reader validates
/// every subsequent frame's (session id, epoch) stamp against the session
/// it admitted — a frame forged for another tenant is counted and dropped
/// without ever touching a backend.
///
/// Fairness: each session owns a FIFO command queue; executors repeatedly
/// pick the next non-busy session after a rotating cursor and run exactly
/// one command (one kSvcCall op or one kSvcBatch of gates) before moving
/// on, so an op-dense tenant cannot starve the others between O(2^n)
/// sweeps. At most one executor runs a given session at a time — each
/// Backend stays single-threaded exactly as SimServer guarantees
/// elsewhere.
class JobService {
 public:
  explicit JobService(ServiceConfig config = {});
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Binds the listen port and starts serving. Throws classical::QmpiError
  /// if the port cannot be bound.
  void start();

  /// Stops accepting, severs every session connection, drains in-flight
  /// commands, and joins all service threads. Idempotent.
  void stop();

  /// Bound port (valid after start(); with config.port == 0 this is the
  /// kernel-assigned ephemeral port).
  std::uint16_t port() const { return port_; }

  /// Total amplitude budget (mem_budget_bytes / 16).
  std::uint64_t budget_amps() const { return budget_amps_; }

  ServiceStats stats() const;

 private:
  /// One queued unit of work: a reply-producing kSvcCall op (req_id != 0)
  /// or a one-way kSvcBatch body (is_batch). `body` is fed verbatim to
  /// apply_sim_request.
  struct Command {
    std::uint64_t req_id = 0;
    bool is_batch = false;
    std::uint32_t op_count = 1;
    std::vector<std::byte> body;
  };

  struct Session {
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;
    int fd = -1;
    /// Serializes frames to this client. Leaf lock: taken by executors and
    /// the reader with no other lock held (never under JobService::mu_).
    qmpi::Mutex write_mu{"JobService::Session::write_mu"};
    std::unique_ptr<sim::Backend> backend;  ///< owning executor only (busy)
    unsigned max_qubits = 0;
    std::uint64_t reserved_amps = 0;
    // The fields below are guarded by JobService::mu_ (a nested struct
    // cannot spell QMPI_GUARDED_BY on the outer instance's member) —
    // except broken/broken_reason/ops_executed, which only the single
    // executor holding `busy` touches.
    std::deque<Command> pending;  ///< guarded by JobService::mu_
    bool busy = false;            ///< an executor is running a command
    bool dead = false;            ///< torn down; executors must skip it
    bool broken = false;          ///< a batch op failed; error latched
    std::string broken_reason;
    std::uint64_t ops_executed = 0;
  };

  void accept_loop();
  void serve_connection(int fd);

  /// Admission control for one kSvcOpen. Returns the admitted session
  /// (already registered and kSvcAccept'ed), or null after sending the
  /// appropriate kSvcReject.
  std::shared_ptr<Session> admit(int fd, std::uint64_t req_id,
                                 std::uint64_t seed, std::uint8_t backend_kind,
                                 std::uint32_t num_shards,
                                 std::uint32_t sim_threads,
                                 std::uint32_t max_qubits);

  /// Releases a session's backend-pool slot and memory reservation after
  /// draining (orderly close) or discarding (disconnect) its queue, then
  /// wakes queued admissions. Safe against a command still executing: it
  /// waits for the executor to finish the in-flight op first.
  void teardown(const std::shared_ptr<Session>& session);

  void executor_loop();
  void execute(const std::shared_ptr<Session>& session, Command cmd);

  void send_frame(const std::shared_ptr<Session>& session,
                  classical::FrameType type,
                  std::span<const std::byte> body) noexcept;

  ServiceConfig config_;
  std::uint64_t budget_amps_ = 0;
  std::shared_ptr<sim::ClusterCache> cache_;  ///< null when caching is off

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> executors_;
  std::vector<std::thread> conn_threads_ QMPI_GUARDED_BY(mu_);
  bool started_ = false;

  /// Guards all mutable session/queue state below. Top of the service
  /// hierarchy: ordered before ClusterCache::mu (stats() reads the cache
  /// counters under mu_; cross-class QMPI_ACQUIRED_BEFORE is not
  /// expressible, so the runtime lock-order validator enforces it), and
  /// never held while sending frames (Session::write_mu) or sweeping a
  /// backend (ThreadPool locks).
  mutable qmpi::Mutex mu_{"JobService::mu"};
  qmpi::CondVar work_cv_;   ///< pending work / busy-flag changes
  qmpi::CondVar admit_cv_;  ///< capacity released / FIFO advances
  bool stopping_ QMPI_GUARDED_BY(mu_) = false;
  /// Admission order.
  std::vector<std::shared_ptr<Session>> sessions_ QMPI_GUARDED_BY(mu_);
  /// Round-robin scheduling position.
  std::size_t cursor_ QMPI_GUARDED_BY(mu_) = 0;
  /// FIFO tickets awaiting capacity.
  std::deque<std::uint64_t> admit_queue_ QMPI_GUARDED_BY(mu_);
  std::uint64_t next_ticket_ QMPI_GUARDED_BY(mu_) = 1;
  std::uint64_t next_session_ QMPI_GUARDED_BY(mu_) = 1;
  std::uint64_t next_epoch_ QMPI_GUARDED_BY(mu_) = 1;
  std::uint64_t reserved_amps_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t admitted_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t queued_admissions_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t forged_dropped_ QMPI_GUARDED_BY(mu_) = 0;
  std::uint64_t ops_executed_ QMPI_GUARDED_BY(mu_) = 0;
};

}  // namespace qmpi::service
