#pragma once

/// \file protocol.hpp
/// Shared constants and error types of the qmpid job-service protocol.
///
/// The service speaks the kSvc* frames of classical/wire.hpp over one TCP
/// connection per session. The conversation is:
///
///   client                          service
///     | -- kSvcOpen(cfg) ------------> |   admission control (may queue)
///     | <- kSvcAccept(session, epoch)  |   or kSvcReject(kind, budget, why)
///     | -- kSvcCall(req, s, e, op) --> |   fair-scheduled onto an executor
///     | <- kSvcResult(req, reply)      |   or kSvcError(req, message)
///     | -- kSvcBatch(s, e, ops) -----> |   one-way; a failure latches and
///     |                                |   returns as a req-id-0 kSvcError
///     | -- kSvcClose(req, s, e) -----> |
///     | <- kSvcClosed(req, op count)   |
///
/// Every post-open frame carries the (session id, epoch) pair the service
/// issued at admission. The reader validates the pair against the
/// connection's own session and silently drops mismatches — a frame forged
/// for another session can never reach that session's backend.

#include <cstdint>
#include <string>

#include "sim/backend.hpp"

namespace qmpi::service {

/// First field of kSvcOpen ("QMPD"): rejects stray clients that dialed the
/// wrong port before any state is allocated for them.
inline constexpr std::uint32_t kSvcMagic = 0x51'4d'50'44;

/// Protocol version carried in kSvcOpen; bumped on incompatible change.
inline constexpr std::uint16_t kSvcVersion = 1;

/// Why a kSvcReject was sent (u8 on the wire; append only).
enum class RejectKind : std::uint8_t {
  kAdmission = 1,  ///< requested amplitude budget exceeds the service total
  kProtocol = 2,   ///< bad magic/version/config, or service shutting down
};

/// Typed admission failure: the session asked for more amplitude memory
/// than the service will ever have (QMPI_MEM_BUDGET), so it fails fast at
/// open time instead of OOM-killing the process mid-sweep. 2^n amplitudes
/// is an exact predictor of a session's peak state-vector footprint, which
/// is what makes the admission predicate sound.
class AdmissionError : public sim::SimulatorError {
 public:
  AdmissionError(const std::string& what, std::uint64_t requested_amps,
                 std::uint64_t available_amps)
      : sim::SimulatorError(what),
        requested_amps_(requested_amps),
        available_amps_(available_amps) {}

  /// Amplitudes the rejected session asked for (2^max_qubits).
  std::uint64_t requested_amps() const { return requested_amps_; }
  /// Amplitudes the service budget can ever hold at once.
  std::uint64_t available_amps() const { return available_amps_; }

 private:
  std::uint64_t requested_amps_;
  std::uint64_t available_amps_;
};

}  // namespace qmpi::service
