#pragma once

/// \file session_client.hpp
/// Client end of one qmpid session: a BatchingSimClient whose bodies
/// travel as kSvc* frames over the session's own TCP connection. The
/// constructor performs the open/admission handshake (throwing the typed
/// AdmissionError when the service's memory budget refuses the session),
/// after which the client is a drop-in sim::SimClient — protocol code
/// cannot tell a multi-tenant service session from a private hub backend.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/sim_wire.hpp"
#include "core/sync.hpp"
#include "service/protocol.hpp"

namespace qmpi::service {

/// What a client asks the service for at kSvcOpen time. `max_qubits` is
/// the session's amplitude reservation (2^max_qubits) — the admission
/// predicate and the per-session allocation ceiling both derive from it.
struct SessionConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t seed = sim::kDefaultSeed;
  sim::BackendKind backend = sim::BackendKind::kSerial;
  unsigned num_shards = 1;
  unsigned sim_threads = 1;
  unsigned max_qubits = 20;
  std::size_t max_batch_ops = sim::kDefaultSimBatchOps;
  int connect_timeout_ms = 5000;
};

class SessionClient final : public BatchingSimClient {
 public:
  /// Dials the service and opens a session. Throws AdmissionError when the
  /// service rejects on memory budget, sim::SimulatorError on a protocol
  /// reject, and classical::QmpiError when the service is unreachable.
  /// Blocks while the open is queued behind earlier sessions (pool or
  /// memory exhaustion queues FIFO; it does not reject).
  explicit SessionClient(const SessionConfig& config);
  ~SessionClient() override;

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  /// Flushes the batch buffer and round-trips once, proving every earlier
  /// one-way batch on this session has executed.
  void fence() override;

  /// The (session id, epoch) pair the service issued at admission; every
  /// frame this client sends is stamped with it.
  std::uint64_t session_id() const { return session_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Orderly close: flush, kSvcClose, await kSvcClosed. Returns the
  /// service-side count of ops this session executed. Idempotent (returns
  /// the remembered count on repeat calls); the destructor calls it
  /// best-effort.
  std::uint64_t close();

  /// Abrupt disconnect WITHOUT the close handshake — the client simply
  /// vanishes, as a crashed process would. Test hook for the
  /// teardown-releases-capacity regression test.
  void abandon();

  /// Test hook: sends a kSvcBatch frame stamped with an arbitrary
  /// (session, epoch) — NOT this session's — carrying `batch_body` (a
  /// kBatch encoding). Used to prove the service drops forged
  /// cross-session frames instead of executing them.
  void send_raw_batch(std::uint64_t session, std::uint64_t epoch,
                      std::span<const std::byte> batch_body);

 private:
  std::vector<std::byte> ship_call(std::span<const std::byte> request) override;
  void ship_batch(std::span<const std::byte> body,
                  std::uint32_t count) override;

  /// Reads frames until the reply for `req_id` arrives. A req-id-0
  /// kSvcError (deferred batch failure) throws immediately — the caller
  /// is by definition at a synchronization point.
  std::vector<std::byte> await_reply(std::uint64_t req_id)
      QMPI_REQUIRES(io_mu_);

  /// Serializes request/reply cycles on the socket. Taken while the base
  /// batch buffer ships, hence ordered after it (batch_mu_ -> io_mu_).
  qmpi::Mutex io_mu_{"SessionClient::io_mu"};
  int fd_ QMPI_GUARDED_BY(io_mu_) = -1;
  std::uint64_t session_ = 0;  ///< immutable after the open handshake
  std::uint64_t epoch_ = 0;    ///< immutable after the open handshake
  std::uint64_t next_req_ QMPI_GUARDED_BY(io_mu_) = 1;
  bool closed_ QMPI_GUARDED_BY(io_mu_) = false;
  std::uint64_t closed_op_count_ QMPI_GUARDED_BY(io_mu_) = 0;
};

}  // namespace qmpi::service
