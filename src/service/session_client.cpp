#include "service/session_client.hpp"

#include <unistd.h>

#include <string>
#include <utility>

#include "classical/error.hpp"
#include "classical/socket_transport.hpp"
#include "classical/wire.hpp"

namespace qmpi::service {

using classical::FrameType;
using qmpi::QmpiError;
using classical::WireReader;
using classical::WireWriter;

SessionClient::SessionClient(const SessionConfig& config)
    : BatchingSimClient(config.max_batch_ops) {
  fd_ = classical::net::dial_tcp(config.host, config.port,
                                 config.connect_timeout_ms);
  if (fd_ < 0) {
    throw QmpiError("cannot reach qmpid service at " + config.host + ":" +
                    std::to_string(config.port));
  }
  const std::uint64_t req_id = next_req_++;
  WireWriter w;
  w.u64(req_id);
  w.u32(kSvcMagic);
  w.u16(kSvcVersion);
  w.u64(config.seed);
  w.u8(static_cast<std::uint8_t>(config.backend));
  w.u32(config.num_shards);
  w.u32(config.sim_threads);
  w.u32(config.max_qubits);
  try {
    classical::write_frame(fd_, FrameType::kSvcOpen, w.data());
    // May block while the open is queued behind earlier sessions — pool
    // and memory exhaustion are a wait, not a failure.
    classical::Frame reply = classical::read_frame(fd_);
    WireReader r(reply.body);
    if (reply.type == FrameType::kSvcAccept) {
      if (r.u64() != req_id) {
        throw QmpiError("qmpid accept acknowledged the wrong open request");
      }
      session_ = r.u64();
      epoch_ = r.u64();
      return;
    }
    if (reply.type == FrameType::kSvcReject) {
      (void)r.u64();  // req id
      const auto kind = static_cast<RejectKind>(r.u8());
      const std::uint64_t requested = r.u64();
      const std::uint64_t available = r.u64();
      const std::string reason = r.str();
      if (kind == RejectKind::kAdmission) {
        throw AdmissionError(reason, requested, available);
      }
      throw sim::SimulatorError("qmpid rejected session: " + reason);
    }
    throw QmpiError("qmpid sent an unexpected frame during session open");
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

SessionClient::~SessionClient() {
  try {
    close();
  } catch (...) {
    // Destruction must not throw; an unclean close just looks like a
    // disconnect to the service, which tears the session down anyway.
  }
  if (fd_ >= 0) ::close(fd_);
}

void SessionClient::fence() {
  flush();
  (void)num_qubits();
}

std::uint64_t SessionClient::close() {
  {
    // Check under the lock: the old unlocked fast-path read of closed_
    // raced concurrent close()/abandon() callers.
    const qmpi::LockGuard lock(io_mu_);
    if (closed_) return closed_op_count_;
  }
  flush();
  const qmpi::LockGuard lock(io_mu_);
  if (closed_) return closed_op_count_;
  const std::uint64_t req_id = next_req_++;
  WireWriter w;
  w.u64(req_id);
  w.u64(session_);
  w.u64(epoch_);
  classical::write_frame(fd_, FrameType::kSvcClose, w.data());
  while (true) {
    classical::Frame frame = classical::read_frame(fd_);
    if (frame.type != FrameType::kSvcClosed) continue;
    WireReader r(frame.body);
    if (r.u64() != req_id) continue;
    closed_op_count_ = r.u64();
    break;
  }
  closed_ = true;
  ::close(fd_);
  fd_ = -1;
  return closed_op_count_;
}

void SessionClient::abandon() {
  const qmpi::LockGuard lock(io_mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  closed_ = true;
}

void SessionClient::send_raw_batch(std::uint64_t session, std::uint64_t epoch,
                                   std::span<const std::byte> batch_body) {
  const qmpi::LockGuard lock(io_mu_);
  WireWriter w;
  w.u64(session);
  w.u64(epoch);
  w.bytes(batch_body);
  classical::write_frame(fd_, FrameType::kSvcBatch, w.data());
}

std::vector<std::byte> SessionClient::ship_call(
    std::span<const std::byte> request) {
  const qmpi::LockGuard lock(io_mu_);
  if (closed_) {
    throw sim::SimulatorError("qmpid session is closed");
  }
  const std::uint64_t req_id = next_req_++;
  WireWriter w;
  w.u64(req_id);
  w.u64(session_);
  w.u64(epoch_);
  w.bytes(request);
  try {
    classical::write_frame(fd_, FrameType::kSvcCall, w.data());
    return await_reply(req_id);
  } catch (const QmpiError& e) {
    throw sim::SimulatorError(std::string("qmpid session lost: ") + e.what());
  }
}

void SessionClient::ship_batch(std::span<const std::byte> body,
                               std::uint32_t /*count*/) {
  const qmpi::LockGuard lock(io_mu_);
  if (closed_) {
    throw sim::SimulatorError("qmpid session is closed");
  }
  WireWriter w;
  w.u64(session_);
  w.u64(epoch_);
  w.bytes(body);
  try {
    classical::write_frame(fd_, FrameType::kSvcBatch, w.data());
  } catch (const QmpiError& e) {
    throw sim::SimulatorError(std::string("qmpid session lost: ") + e.what());
  }
}

std::vector<std::byte> SessionClient::await_reply(std::uint64_t req_id) {
  while (true) {
    classical::Frame frame = classical::read_frame(fd_);
    if (frame.type == FrameType::kSvcResult) {
      WireReader r(frame.body);
      if (r.u64() != req_id) continue;  // stale reply; cannot happen today
      const auto rest = r.rest();
      return std::vector<std::byte>(rest.begin(), rest.end());
    }
    if (frame.type == FrameType::kSvcError) {
      WireReader r(frame.body);
      const std::uint64_t id = r.u64();
      const std::string message = r.str();
      if (id == req_id || id == 0) {
        // id 0 is a deferred batch failure surfacing at this (synchronous)
        // call — same latching contract as the hub's kSimError req id 0.
        throw sim::SimulatorError(message);
      }
      continue;
    }
    // Unknown frame type from a newer service: skip.
  }
}

}  // namespace qmpi::service
