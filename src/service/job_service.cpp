#include "service/job_service.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <utility>

#include "classical/error.hpp"
#include "classical/socket_transport.hpp"
#include "core/env.hpp"
#include "core/sim_wire.hpp"
#include "sim/thread_pool.hpp"

namespace qmpi::service {

using classical::FrameType;
using qmpi::QmpiError;
using classical::WireReader;
using classical::WireWriter;

namespace {

/// Amplitudes are 16 bytes (two doubles); the admission predicate works in
/// amplitude units so the reject frame can name the budget in the same
/// currency the user reasons in (2^n amplitudes for an n-qubit session).
constexpr std::uint64_t kBytesPerAmp = sizeof(sim::Complex);

/// Sessions above 62 qubits would overflow the 2^n reservation arithmetic;
/// no budget this service can express admits them anyway.
constexpr std::uint32_t kMaxSessionQubits = 62;

}  // namespace

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  if (const char* text = env::get("QMPI_MAX_SESSIONS")) {
    cfg.max_sessions = static_cast<std::size_t>(env::parse_env_number(
        "QMPI_MAX_SESSIONS", text, /*allow_zero=*/false, 1u << 16));
  }
  if (const char* text = env::get("QMPI_MEM_BUDGET")) {
    cfg.mem_budget_bytes =
        env::parse_env_number("QMPI_MEM_BUDGET", text, /*allow_zero=*/false);
  }
  if (const char* text = env::get("QMPI_CIRCUIT_CACHE")) {
    const std::string_view v(text);
    if (v == "on") {
      cfg.circuit_cache_entries = sim::kDefaultCircuitCacheEntries;
    } else if (v == "off") {
      cfg.circuit_cache_entries = 0;
    } else {
      // An explicit size must be positive; disabling is spelled "off".
      cfg.circuit_cache_entries = static_cast<std::size_t>(
          env::parse_env_number("QMPI_CIRCUIT_CACHE", text,
                                /*allow_zero=*/false, 1u << 24));
    }
  }
  if (const char* text = env::get("QMPI_SERVICE_EXECUTORS")) {
    cfg.executors = static_cast<unsigned>(env::parse_env_number(
        "QMPI_SERVICE_EXECUTORS", text, /*allow_zero=*/false, 256));
  }
  return cfg;
}

JobService::JobService(ServiceConfig config)
    : config_(config), budget_amps_(config.mem_budget_bytes / kBytesPerAmp) {
  if (config_.circuit_cache_entries > 0) {
    cache_ = std::make_shared<sim::ClusterCache>(config_.circuit_cache_entries);
  }
}

JobService::~JobService() { stop(); }

void JobService::start() {
  listen_fd_ = classical::net::listen_tcp(
      config_.port, /*backlog=*/static_cast<int>(config_.max_sessions) + 16,
      "qmpid", port_);
  unsigned n = config_.executors;
  if (n == 0) {
    n = std::clamp(std::thread::hardware_concurrency(), 1u, 8u);
  }
  executors_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void JobService::stop() {
  {
    const qmpi::LockGuard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Sever every live session so blocked readers wake with EOF and run
    // their own teardown; queued admissions wake to a shutdown reject.
    for (const auto& s : sessions_) ::shutdown(s->fd, SHUT_RDWR);
    work_cv_.notify_all();
    admit_cv_.notify_all();
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    const qmpi::LockGuard lock(mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
}

ServiceStats JobService::stats() const {
  const qmpi::LockGuard lock(mu_);
  ServiceStats s;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.queued_admissions = queued_admissions_;
  s.active_sessions = sessions_.size();
  s.reserved_amps = reserved_amps_;
  s.forged_dropped = forged_dropped_;
  s.ops_executed = ops_executed_;
  if (cache_) {
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
    s.cache_evictions = cache_->evictions();
  }
  return s;
}

// ---------------------------------------------------------------- accept ---

void JobService::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by stop()
    }
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    const qmpi::LockGuard lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void JobService::send_frame(const std::shared_ptr<Session>& session,
                            FrameType type,
                            std::span<const std::byte> body) noexcept {
  // A dead client socket is the reader thread's problem (it sees EOF and
  // tears the session down); the executor must not die on a failed reply.
  try {
    const qmpi::LockGuard lock(session->write_mu);
    classical::write_frame(session->fd, type, body);
  } catch (const QmpiError&) {
  }
}

namespace {

void send_reject(int fd, std::uint64_t req_id, RejectKind kind,
                 std::uint64_t requested_amps, std::uint64_t available_amps,
                 const std::string& reason) noexcept {
  try {
    WireWriter w;
    w.u64(req_id);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(requested_amps);
    w.u64(available_amps);
    w.str(reason);
    classical::write_frame(fd, FrameType::kSvcReject, w.data());
  } catch (const QmpiError&) {
  }
}

}  // namespace

// ------------------------------------------------------------- admission ---

std::shared_ptr<JobService::Session> JobService::admit(
    int fd, std::uint64_t req_id, std::uint64_t seed, std::uint8_t backend_kind,
    std::uint32_t num_shards, std::uint32_t sim_threads,
    std::uint32_t max_qubits) {
  const auto protocol_reject = [&](const std::string& reason) {
    {
      const qmpi::LockGuard lock(mu_);
      ++rejected_;
    }
    send_reject(fd, req_id, RejectKind::kProtocol, 0, budget_amps_, reason);
    return nullptr;
  };

  if (backend_kind != static_cast<std::uint8_t>(sim::BackendKind::kSerial) &&
      backend_kind != static_cast<std::uint8_t>(sim::BackendKind::kSharded)) {
    return protocol_reject("session backend must be serial or sharded");
  }
  if (max_qubits == 0 || max_qubits > kMaxSessionQubits) {
    return protocol_reject("session max_qubits must be in [1, " +
                           std::to_string(kMaxSessionQubits) + "], got " +
                           std::to_string(max_qubits));
  }

  const std::uint64_t requested = 1ull << max_qubits;
  qmpi::UniqueLock lock(mu_);
  if (requested > budget_amps_) {
    // Fail fast with the typed admission error: this reservation can NEVER
    // fit, so queueing would deadlock the client. 2^n amplitudes is an
    // exact predictor of the session's peak footprint, which is what lets
    // the service refuse here instead of OOMing mid-sweep later.
    ++rejected_;
    lock.unlock();
    send_reject(fd, req_id, RejectKind::kAdmission, requested, budget_amps_,
                "admission denied: session needs " + std::to_string(requested) +
                    " amplitudes (2^" + std::to_string(max_qubits) +
                    "), service budget is " + std::to_string(budget_amps_) +
                    " amplitudes (QMPI_MEM_BUDGET)");
    return nullptr;
  }

  // The reservation fits the service, just maybe not *right now*: queue
  // FIFO behind earlier opens until a slot and enough amplitudes free up.
  const std::uint64_t ticket = next_ticket_++;
  admit_queue_.push_back(ticket);
  bool waited = false;
  while (!stopping_ &&
         !(admit_queue_.front() == ticket &&
           sessions_.size() < config_.max_sessions &&
           reserved_amps_ + requested <= budget_amps_)) {
    waited = true;
    admit_cv_.wait(lock);
  }
  if (stopping_) {
    admit_queue_.erase(
        std::find(admit_queue_.begin(), admit_queue_.end(), ticket));
    ++rejected_;
    admit_cv_.notify_all();
    lock.unlock();
    send_reject(fd, req_id, RejectKind::kProtocol, requested, budget_amps_,
                "service shutting down");
    return nullptr;
  }
  admit_queue_.pop_front();
  if (waited) ++queued_admissions_;
  admit_cv_.notify_all();  // let the next ticket re-evaluate its predicate

  auto session = std::make_shared<Session>();
  session->id = next_session_++;
  session->epoch = next_epoch_++;
  session->fd = fd;
  session->max_qubits = max_qubits;
  session->reserved_amps = requested;
  try {
    session->backend = sim::make_backend(
        static_cast<sim::BackendKind>(backend_kind), seed,
        std::max(1u, num_shards));
  } catch (const sim::SimulatorError& e) {
    ++rejected_;
    admit_cv_.notify_all();
    lock.unlock();
    send_reject(fd, req_id, RejectKind::kProtocol, requested, budget_amps_,
                std::string("backend construction failed: ") + e.what());
    return nullptr;
  }
  session->backend->set_num_threads(std::min<std::uint32_t>(
      sim_threads, static_cast<std::uint32_t>(sim::ThreadPool::kMaxLanes)));
  if (cache_) session->backend->set_cluster_cache(cache_);

  sessions_.push_back(session);
  reserved_amps_ += requested;
  ++admitted_;
  lock.unlock();

  WireWriter w;
  w.u64(req_id);
  w.u64(session->id);
  w.u64(session->epoch);
  send_frame(session, FrameType::kSvcAccept, w.data());
  return session;
}

void JobService::teardown(const std::shared_ptr<Session>& session) {
  qmpi::UniqueLock lock(mu_);
  if (session->dead) return;
  session->dead = true;
  session->pending.clear();
  // An executor may be mid-sweep on this backend; wait it out so the
  // Backend is never destroyed under a running command.
  while (session->busy) work_cv_.wait(lock);
  sessions_.erase(std::find(sessions_.begin(), sessions_.end(), session));
  if (cursor_ >= sessions_.size()) cursor_ = 0;
  reserved_amps_ -= session->reserved_amps;
  // Releasing the slot and the amplitudes is what un-blocks queued
  // admissions — the disconnect-teardown regression test pivots on this.
  admit_cv_.notify_all();
  work_cv_.notify_all();
}

// ------------------------------------------------------------ connection ---

void JobService::serve_connection(int fd) {
  std::shared_ptr<Session> session;
  try {
    classical::Frame open = classical::read_frame(fd);
    if (open.type != FrameType::kSvcOpen) {
      ::close(fd);
      return;
    }
    WireReader r(open.body);
    const std::uint64_t req_id = r.u64();
    const std::uint32_t magic = r.u32();
    const std::uint16_t version = r.u16();
    if (magic != kSvcMagic || version != kSvcVersion) {
      send_reject(fd, req_id, RejectKind::kProtocol, 0, budget_amps_,
                  "bad magic/version in session open (is this a qmpid "
                  "client?)");
      ::close(fd);
      return;
    }
    const std::uint64_t seed = r.u64();
    const std::uint8_t backend_kind = r.u8();
    const std::uint32_t num_shards = r.u32();
    const std::uint32_t sim_threads = r.u32();
    const std::uint32_t max_qubits = r.u32();
    session = admit(fd, req_id, seed, backend_kind, num_shards, sim_threads,
                    max_qubits);
    if (!session) {
      ::close(fd);
      return;
    }

    while (true) {
      classical::Frame frame = classical::read_frame(fd);
      if (frame.type == FrameType::kSvcCall ||
          frame.type == FrameType::kSvcBatch ||
          frame.type == FrameType::kSvcClose) {
        WireReader body(frame.body);
        const std::uint64_t req =
            frame.type == FrameType::kSvcBatch ? 0 : body.u64();
        const std::uint64_t sid = body.u64();
        const std::uint64_t epoch = body.u64();
        if (sid != session->id || epoch != session->epoch) {
          // The isolation property: a frame stamped for another tenant
          // (or a stale epoch) is dropped here, before any backend or
          // queue is touched. Counted so tests can assert the drop.
          const qmpi::LockGuard lock(mu_);
          ++forged_dropped_;
          continue;
        }
        if (frame.type == FrameType::kSvcClose) {
          // Orderly close: drain everything already queued, then ack with
          // the session's op count and release its reservations.
          qmpi::UniqueLock lock(mu_);
          while (!stopping_ &&
                 (!session->pending.empty() || session->busy)) {
            work_cv_.wait(lock);
          }
          const std::uint64_t ops = session->ops_executed;
          lock.unlock();
          WireWriter w;
          w.u64(req);
          w.u64(ops);
          send_frame(session, FrameType::kSvcClosed, w.data());
          break;
        }
        Command cmd;
        cmd.req_id = req;
        cmd.is_batch = frame.type == FrameType::kSvcBatch;
        const std::span<const std::byte> rest = body.rest();
        cmd.body.assign(rest.begin(), rest.end());
        if (cmd.is_batch) {
          // kBatch body layout: u8 opcode, u32 op count, encoded ops.
          WireReader peek(cmd.body);
          if (peek.remaining() < 5 ||
              peek.u8() != static_cast<std::uint8_t>(SimOp::kBatch)) {
            const qmpi::LockGuard lock(mu_);
            ++forged_dropped_;
            continue;
          }
          cmd.op_count = peek.u32();
        }
        {
          const qmpi::LockGuard lock(mu_);
          if (!session->dead) {
            session->pending.push_back(std::move(cmd));
            work_cv_.notify_all();
          }
        }
        continue;
      }
      // Unknown or out-of-place frame type: ignore (future client talking
      // a newer minor revision must not kill the session).
    }
  } catch (const QmpiError&) {
    // EOF or a mid-frame death: the client vanished. Fall through to the
    // teardown below — the session's slot and memory MUST be released or
    // the service slowly leaks capacity (the regression this PR fixes by
    // construction).
  }
  if (session) teardown(session);
  ::close(fd);
}

// -------------------------------------------------------------- executors ---

void JobService::executor_loop() {
  while (true) {
    qmpi::UniqueLock lock(mu_);
    std::shared_ptr<Session> picked;
    for (;;) {
      if (stopping_) return;
      // Fair pick: scan from the rotating cursor so each session gets one
      // command per pass, regardless of how fast any one tenant enqueues.
      const std::size_t n = sessions_.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = (cursor_ + i) % n;
        const auto& s = sessions_[idx];
        if (!s->dead && !s->busy && !s->pending.empty()) {
          picked = s;
          cursor_ = (idx + 1) % n;
          break;
        }
      }
      if (picked) break;
      work_cv_.wait(lock);
    }
    Command cmd = std::move(picked->pending.front());
    picked->pending.pop_front();
    picked->busy = true;
    lock.unlock();

    execute(picked, std::move(cmd));

    lock.lock();
    picked->busy = false;
    // Wakes peers three ways: executors (more of this session's queue),
    // the reader draining an orderly close, and teardown waiting !busy.
    work_cv_.notify_all();
  }
}

void JobService::execute(const std::shared_ptr<Session>& session,
                         Command cmd) {
  if (session->broken) {
    // A batched gate failed earlier; the op stream is broken for good,
    // exactly like the hub's latched sim failure. Calls get the latched
    // error (so the client's next sync point throws); batches are noise.
    if (!cmd.is_batch) {
      WireWriter w;
      w.u64(cmd.req_id);
      w.str(session->broken_reason);
      send_frame(session, FrameType::kSvcError, w.data());
    }
    return;
  }
  try {
    // The admission predicate only holds if no session can outgrow what
    // it reserved: gate allocations against the admitted ceiling.
    if (!cmd.is_batch && !cmd.body.empty() &&
        cmd.body.front() ==
            static_cast<std::byte>(static_cast<std::uint8_t>(SimOp::kAllocate))) {
      WireReader peek(cmd.body);
      peek.u8();
      const std::uint64_t count = peek.u64();
      const std::uint64_t live = session->backend->num_qubits();
      if (count > session->max_qubits - live) {
        throw sim::SimulatorError(
            "allocation of " + std::to_string(count) +
            " qubit(s) would exceed this session's admitted ceiling of " +
            std::to_string(session->max_qubits) + " (currently " +
            std::to_string(live) + " live); reopen with a larger max_qubits");
      }
    }
    const std::vector<std::byte> reply =
        apply_sim_request(*session->backend, cmd.body);
    {
      const qmpi::LockGuard lock(mu_);
      ops_executed_ += cmd.op_count;
      session->ops_executed += cmd.op_count;
    }
    if (!cmd.is_batch) {
      WireWriter w;
      w.u64(cmd.req_id);
      w.bytes(reply);
      send_frame(session, FrameType::kSvcResult, w.data());
    }
  } catch (const sim::SimulatorError& e) {
    WireWriter w;
    if (cmd.is_batch) {
      session->broken = true;
      session->broken_reason = e.what();
      w.u64(0);  // req id 0 = deferred one-way failure
    } else {
      w.u64(cmd.req_id);
    }
    w.str(e.what());
    send_frame(session, FrameType::kSvcError, w.data());
  }
}

}  // namespace qmpi::service
